package rs

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gf"
)

// batchOutcome snapshots everything observable about one DecodeAll
// call: the per-word results (copied out of the workspace), the
// tallies, and the corrected arena bytes.
type batchOutcome struct {
	words    []WordResult
	clean    int
	corr     int
	failed   int
	arena    []gf.Elem
	decodeOK bool
}

func runBatch(t *testing.T, bd *BatchDecoder, pristine []gf.Elem, stride, count int, erasures [][]int) batchOutcome {
	t.Helper()
	arena := append([]gf.Elem(nil), pristine...)
	res, err := bd.DecodeAll(Batch{Words: arena, Stride: stride, Count: count}, erasures)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	return batchOutcome{
		words:    append([]WordResult(nil), res.Words...),
		clean:    res.Clean,
		corr:     res.Corrected,
		failed:   res.Failed,
		arena:    arena,
		decodeOK: true,
	}
}

// TestDecodeAllWorkersDeterministic is the parallel half of the
// equivalence law: for randomized mixed arenas (clean, sparse errors,
// erasures with shared and distinct lists, invalid symbols,
// beyond-capability words), every worker count must produce
// bit-identical arenas, identical per-word results (including error
// values), and identical tallies — and repeated calls on the same
// warm BatchDecoder must reproduce the cold-cache outcomes exactly.
func TestDecodeAllWorkersDeterministic(t *testing.T) {
	shapes := []struct{ n, k int }{{18, 16}, {36, 16}, {255, 223}}
	workerCounts := []int{1, 4, 8}
	for _, s := range shapes {
		c := MustNew(f8, s.n, s.k)
		rng := rand.New(rand.NewSource(int64(900 + s.n)))
		for trial := 0; trial < 6; trial++ {
			count := 1 + rng.Intn(32)
			stride := s.n + rng.Intn(4)
			b, erasures, _ := buildArena(t, rng, c, count, stride)
			pristine := append([]gf.Elem(nil), b.Words...)

			var ref batchOutcome
			for wi, w := range workerCounts {
				bd := c.NewBatchDecoder().SetWorkers(w)
				if got := bd.Workers(); got != w {
					t.Fatalf("Workers() = %d, want %d", got, w)
				}
				cold := runBatch(t, bd, pristine, stride, count, erasures)
				warm := runBatch(t, bd, pristine, stride, count, erasures)
				if wi == 0 {
					ref = cold
				}
				for name, got := range map[string]batchOutcome{"cold": cold, "warm": warm} {
					if !equalElems(got.arena, ref.arena) {
						t.Fatalf("n=%d trial=%d workers=%d %s: arena differs from workers=1", s.n, trial, w, name)
					}
					if !reflect.DeepEqual(got.words, ref.words) {
						t.Fatalf("n=%d trial=%d workers=%d %s: word results differ from workers=1\n got %+v\nwant %+v",
							s.n, trial, w, name, got.words, ref.words)
					}
					if got.clean != ref.clean || got.corr != ref.corr || got.failed != ref.failed {
						t.Fatalf("n=%d trial=%d workers=%d %s: tallies (%d,%d,%d) != (%d,%d,%d)",
							s.n, trial, w, name, got.clean, got.corr, got.failed, ref.clean, ref.corr, ref.failed)
					}
				}
			}

			// Ground truth: the per-word Decoder.Decode loop over the
			// pristine received words must match the reference outcome
			// word for word — same classification, same corrections,
			// failed words untouched.
			dec := c.NewDecoder()
			for w := 0; w < count; w++ {
				word := pristine[w*stride : w*stride+s.n]
				var ers []int
				if erasures != nil {
					ers = erasures[w]
				}
				got, err := dec.Decode(word, ers)
				wr := ref.words[w]
				if (err != nil) != (wr.Err != nil) {
					t.Fatalf("n=%d trial=%d word %d: batch err %v, per-word err %v", s.n, trial, w, wr.Err, err)
				}
				arenaWord := ref.arena[w*stride : w*stride+s.n]
				if err != nil {
					if err.Error() != wr.Err.Error() {
						t.Fatalf("n=%d trial=%d word %d: batch err %q, per-word err %q", s.n, trial, w, wr.Err, err)
					}
					if errors.Is(err, ErrUncorrectable) != errors.Is(wr.Err, ErrUncorrectable) {
						t.Fatalf("n=%d trial=%d word %d: classification differs: batch %v, per-word %v", s.n, trial, w, wr.Err, err)
					}
					if !equalElems(arenaWord, word) {
						t.Fatalf("n=%d trial=%d word %d: failed word modified in arena", s.n, trial, w)
					}
					continue
				}
				if !equalElems(arenaWord, got.Codeword) {
					t.Fatalf("n=%d trial=%d word %d: batch corrected word differs from Decoder.Decode", s.n, trial, w)
				}
				if wr.Corrections != got.Corrections {
					t.Fatalf("n=%d trial=%d word %d: batch corrections %d, per-word %d", s.n, trial, w, wr.Corrections, got.Corrections)
				}
			}
		}
	}
}

// TestDecodeStreamMatchesDecodeAll checks that chunked streaming over
// an arena — for chunk sizes that do and do not divide the word count
// — produces exactly the whole-arena DecodeAll outcome: same corrected
// bytes, same per-word results in stream order, same tallies, and emit
// observes contiguous base offsets.
func TestDecodeStreamMatchesDecodeAll(t *testing.T) {
	shapes := []struct{ n, k int }{{36, 16}, {255, 223}}
	for _, s := range shapes {
		c := MustNew(f8, s.n, s.k)
		rng := rand.New(rand.NewSource(int64(1700 + s.n)))
		const count = 24
		stride := s.n + 2
		b, erasures, _ := buildArena(t, rng, c, count, stride)
		pristine := append([]gf.Elem(nil), b.Words...)

		ref := runBatch(t, c.NewBatchDecoder(), pristine, stride, count, erasures)

		for _, chunk := range []int{1, 5, 8, count} {
			arena := append([]gf.Elem(nil), pristine...)
			bd := c.NewBatchDecoder()
			next := 0
			fill := func() (Batch, [][]int, error) {
				if next >= count {
					return Batch{}, nil, nil
				}
				cnt := chunk
				if count-next < cnt {
					cnt = count - next
				}
				sub := Batch{
					Words:  arena[next*stride : (next+cnt-1)*stride+s.n],
					Stride: stride,
					Count:  cnt,
				}
				var ers [][]int
				if erasures != nil {
					ers = erasures[next : next+cnt]
				}
				next += cnt
				return sub, ers, nil
			}
			var bases []int
			var words []WordResult
			emit := func(base int, eb Batch, res *BatchResult) error {
				bases = append(bases, base)
				if len(res.Words) != eb.Count {
					t.Fatalf("chunk=%d: emit got %d word results for %d-word chunk", chunk, len(res.Words), eb.Count)
				}
				words = append(words, res.Words...)
				return nil
			}
			st, err := bd.DecodeStream(fill, emit)
			if err != nil {
				t.Fatalf("chunk=%d: DecodeStream: %v", chunk, err)
			}
			wantChunks := (count + chunk - 1) / chunk
			if st.Chunks != wantChunks || st.Words != count {
				t.Fatalf("chunk=%d: stats %d chunks / %d words, want %d / %d", chunk, st.Chunks, st.Words, wantChunks, count)
			}
			if st.Clean != ref.clean || st.Corrected != ref.corr || st.Failed != ref.failed {
				t.Fatalf("chunk=%d: stream tallies (%d,%d,%d) != DecodeAll (%d,%d,%d)",
					chunk, st.Clean, st.Corrected, st.Failed, ref.clean, ref.corr, ref.failed)
			}
			for i, base := range bases {
				if want := i * chunk; base != want {
					t.Fatalf("chunk=%d: emit base[%d] = %d, want %d", chunk, i, base, want)
				}
			}
			if !reflect.DeepEqual(words, ref.words) {
				t.Fatalf("chunk=%d: streamed word results differ from whole-arena DecodeAll", chunk)
			}
			if !equalElems(arena, ref.arena) {
				t.Fatalf("chunk=%d: streamed arena differs from whole-arena DecodeAll", chunk)
			}
		}
	}
}

// TestDecodeStreamErrors covers the abort paths: missing fill, a fill
// error (wrapped with the words-so-far count), an emit error (wrapped
// with the chunk index), and an invalid chunk shape surfacing the
// DecodeAll validation error.
func TestDecodeStreamErrors(t *testing.T) {
	c := MustNew(f8, 18, 16)
	bd := c.NewBatchDecoder()

	if _, err := bd.DecodeStream(nil, nil); err == nil || !strings.Contains(err.Error(), "fill callback") {
		t.Fatalf("nil fill: err = %v", err)
	}

	sentinel := errors.New("device gone")
	arena := make([]gf.Elem, 18)
	if err := c.EncodeTo(arena, make([]gf.Elem, 16)); err != nil {
		t.Fatal(err)
	}
	calls := 0
	st, err := bd.DecodeStream(func() (Batch, [][]int, error) {
		calls++
		if calls > 1 {
			return Batch{}, nil, sentinel
		}
		return Batch{Words: arena, Stride: 18, Count: 1}, nil, nil
	}, nil)
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "stream fill after 1 words") {
		t.Fatalf("fill error: err = %v", err)
	}
	if st.Words != 1 || st.Chunks != 1 {
		t.Fatalf("fill error: stats = %+v, want 1 chunk / 1 word", st)
	}

	emitErr := errors.New("sink full")
	calls = 0
	_, err = bd.DecodeStream(func() (Batch, [][]int, error) {
		calls++
		if calls > 1 {
			return Batch{}, nil, nil
		}
		return Batch{Words: arena, Stride: 18, Count: 1}, nil, nil
	}, func(base int, b Batch, res *BatchResult) error { return emitErr })
	if !errors.Is(err, emitErr) || !strings.Contains(err.Error(), "stream emit at chunk 0") {
		t.Fatalf("emit error: err = %v", err)
	}

	_, err = bd.DecodeStream(func() (Batch, [][]int, error) {
		return Batch{Words: arena, Stride: 4, Count: 1}, nil, nil
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "stride") {
		t.Fatalf("bad chunk shape: err = %v", err)
	}
}

// TestBatchErasureSteadyStateZeroAllocs pins the zero-allocation
// steady state of the cached-erasure paths: an arena-wide shared list
// (memo hit per word) and per-word distinct lists (content hit per
// word), each re-corrupted and re-decoded per run after one warming
// call.
func TestBatchErasureSteadyStateZeroAllocs(t *testing.T) {
	c := MustNew(f8, 36, 16)
	const count = 16
	rng := rand.New(rand.NewSource(61))
	arena := make([]gf.Elem, count*36)
	for w := 0; w < count; w++ {
		if err := c.EncodeTo(arena[w*36:(w+1)*36], randData(rng, c)); err != nil {
			t.Fatal(err)
		}
	}
	b := Batch{Words: arena, Stride: 36, Count: count}

	shared := rng.Perm(36)[:8:8]
	sharedErs := make([][]int, count)
	distinctErs := make([][]int, count)
	for w := 0; w < count; w++ {
		sharedErs[w] = shared
		distinctErs[w] = rng.Perm(36)[:6:6]
	}
	type flip struct {
		pos int
		val gf.Elem
	}
	flipsFor := func(ers [][]int) []flip {
		var fl []flip
		for w, list := range ers {
			for _, p := range list {
				fl = append(fl, flip{w*36 + p, gf.Elem(1 + rng.Intn(255))})
			}
		}
		return fl
	}
	cases := []struct {
		name  string
		ers   [][]int
		flips []flip
	}{
		{"shared-list", sharedErs, flipsFor(sharedErs)},
		{"distinct-lists", distinctErs, flipsFor(distinctErs)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bd := c.NewBatchDecoder()
			if _, err := bd.DecodeAll(b, tc.ers); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				for _, f := range tc.flips {
					arena[f.pos] ^= f.val
				}
				res, err := bd.DecodeAll(b, tc.ers)
				if err != nil {
					t.Fatal(err)
				}
				if res.Corrected != count {
					t.Fatalf("%d corrected, want %d", res.Corrected, count)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state DecodeAll allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

// TestDecodeStreamSteadyStateZeroAllocs pins the streaming steady
// state: with the fill closure, chunk arena and erasure lists all
// reused across runs, a full stream pass allocates nothing.
func TestDecodeStreamSteadyStateZeroAllocs(t *testing.T) {
	c := MustNew(f8, 36, 16)
	const (
		count = 24
		chunk = 8
	)
	rng := rand.New(rand.NewSource(62))
	arena := make([]gf.Elem, count*36)
	for w := 0; w < count; w++ {
		if err := c.EncodeTo(arena[w*36:(w+1)*36], randData(rng, c)); err != nil {
			t.Fatal(err)
		}
	}
	shared := rng.Perm(36)[:8:8]
	ers := make([][]int, chunk)
	for w := range ers {
		ers[w] = shared
	}
	type flip struct {
		pos int
		val gf.Elem
	}
	var flips []flip
	for w := 0; w < count; w++ {
		for _, p := range shared {
			flips = append(flips, flip{w*36 + p, gf.Elem(1 + rng.Intn(255))})
		}
	}
	bd := c.NewBatchDecoder()
	next := 0
	fill := func() (Batch, [][]int, error) {
		if next >= count {
			return Batch{}, nil, nil
		}
		sub := Batch{Words: arena[next*36 : (next+chunk)*36], Stride: 36, Count: chunk}
		next += chunk
		return sub, ers, nil
	}
	run := func() {
		next = 0
		st, err := bd.DecodeStream(fill, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Words != count {
			t.Fatalf("streamed %d words, want %d", st.Words, count)
		}
	}
	run() // warm the erasure-set cache
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range flips {
			arena[f.pos] ^= f.val
		}
		run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeStream allocates %.1f per run, want 0", allocs)
	}
}
