package rs

import (
	"fmt"

	"repro/internal/gf"
)

// This file implements the erasure-set locator cache behind the batch
// decode layer. The erasure locator Gamma(x) and its Chien/Forney
// setup depend only on the *set* of erased positions — not on the word
// being decoded — and the scrub workloads this package serves repeat
// position sets heavily: pagesim passes one located-column set for a
// whole page arena, memsim's duplex pair shares one list, interleave's
// per-stripe split is stable across scrub passes. Caching that setup
// per position set turns the per-word erasure cost from "rebuild
// Gamma, run Berlekamp-Massey, sweep Chien over n positions" into
// "evaluate Omega at rho precomputed roots".
//
// The cache keys on the *content* of the erasure list (hash plus
// element-wise verify, in list order). Pointer identity is
// deliberately not trusted across calls: callers reuse backing arrays
// (append into the same slice every trial), so the same pointer+length
// can carry different positions on the next call. Within a single
// DecodeAll call the lists are immutable by contract (see Batch), so a
// one-entry pointer memo short-circuits the common
// arena-wide-shared-list case to a single pointer compare per word.
//
// The table is direct-mapped: each set hashes to one bucket and a
// colliding set simply rebuilds over it. There is no LRU bookkeeping
// to touch on the hot path, lookups are one compare, and the worst
// case (every word a distinct set, all colliding) degrades to the
// build-per-word cost, never worse than uncached.

// erasureCacheBuckets sizes the per-lane direct-mapped table (power of
// two). Scrub arenas carry from one shared set up to one set per word;
// 512 buckets keeps an arena of 64 distinct sets essentially
// collision-free (expected colliding pairs ~2) while bounding the
// lane's memory — entries are built lazily, so unused buckets cost one
// nil pointer each.
const erasureCacheBuckets = 512

// erasureRoot precomputes the fused Chien/Forney state at one root of
// the erasure locator: position, evaluation points, the inverted
// Forney denominator 1/(x*Gamma_odd(1/x)) (defined for every simple
// root), the general-fcr adjustment x^(1-fcr), and the first
// syndrome-fold multiplier alpha^(fcr*p).
type erasureRoot struct {
	pos      int
	x        gf.Elem
	xInv     gf.Elem
	invDenom gf.Elem
	fcrAdj   gf.Elem
	synBase  gf.Elem
}

// erasureEntry caches everything about one erasure position set that
// Decoder.Decode would otherwise recompute per word: the validation
// outcome (err non-nil reproduces the exact Decode error for every
// word sharing an invalid list), the locator Gamma zero-padded to d+1
// coefficients, and the per-root Forney setup. fastOK guards the
// no-Chien fast path; it is false in the degenerate case of a
// vanishing Forney denominator, which the general sweep classifies.
type erasureEntry struct {
	key       uint64
	positions []int
	err       error
	gamma     []gf.Elem
	roots     []erasureRoot
	fastOK    bool
}

// erasureCache is the per-lane (hence single-goroutine) direct-mapped
// cache of erasure-set entries.
type erasureCache struct {
	c       *Code
	buckets [erasureCacheBuckets]*erasureEntry
	erased  []bool // validation bitset, kept all-false between builds

	// One-entry pointer memo, valid only within a single DecodeAll
	// call (reset at every range start): lists shared across an
	// arena's words resolve with one pointer compare.
	memoSrc *int
	memoLen int
	memoEnt *erasureEntry
}

func newErasureCache(c *Code) erasureCache {
	return erasureCache{c: c, erased: make([]bool, c.n)}
}

// resetMemo invalidates the intra-call pointer memo; the content-keyed
// entries stay warm across calls.
func (ec *erasureCache) resetMemo() {
	ec.memoSrc = nil
	ec.memoLen = 0
	ec.memoEnt = nil
}

// hashInts is FNV-1a over the list elements, order-sensitive like the
// content compare it fronts.
func hashInts(a []int) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range a {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// get returns the cache entry for the erasure list, building it on a
// miss. ers must be non-empty (erasure-free words never reach the
// cache).
func (ec *erasureCache) get(ers []int) *erasureEntry {
	if ec.memoEnt != nil && ec.memoLen == len(ers) && ec.memoSrc == &ers[0] {
		return ec.memoEnt
	}
	h := hashInts(ers)
	slot := &ec.buckets[h&(erasureCacheBuckets-1)]
	e := *slot
	if e != nil && e.key == h && intsEqual(e.positions, ers) {
		ec.memoSrc, ec.memoLen, ec.memoEnt = &ers[0], len(ers), e
		return e
	}
	if e == nil {
		e = &erasureEntry{}
		*slot = e
	}
	e.key = h
	ec.build(e, ers)
	ec.memoSrc, ec.memoLen, ec.memoEnt = &ers[0], len(ers), e
	return e
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// build fills the entry for the erasure list: validation replicating
// Decoder.decode exactly (same order, same messages), then Gamma and
// the per-root Forney setup.
func (ec *erasureCache) build(e *erasureEntry, ers []int) {
	c := ec.c
	f := c.f
	d := c.n - c.k
	e.positions = append(e.positions[:0], ers...)
	e.err = nil
	e.gamma = e.gamma[:0]
	e.roots = e.roots[:0]
	e.fastOK = false

	// Validation in list order, range before duplicate per position,
	// exactly as decode reports it. The bitset is kept all-false
	// between builds by clearing only the positions set here.
	for i, p := range ers {
		if p < 0 || p >= c.n {
			e.err = fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, c.n)
		} else if ec.erased[p] {
			e.err = fmt.Errorf("rs: duplicate erasure position %d", p)
		} else {
			ec.erased[p] = true
			continue
		}
		for _, q := range ers[:i] {
			ec.erased[q] = false
		}
		return
	}
	for _, p := range ers {
		ec.erased[p] = false
	}
	rho := len(ers)
	if rho > d {
		e.err = fmt.Errorf("%w: %d erasures exceed n-k=%d", ErrUncorrectable, rho, d)
		return
	}

	// Gamma(x) = prod (1 - x*alpha^(n-1-p)), built exactly as decode
	// builds it, zero-padded to d+1 coefficients. Each linear factor
	// multiplies through one row view when the field carries tables.
	for len(e.gamma) <= d {
		e.gamma = append(e.gamma, 0)
	}
	for i := range e.gamma {
		e.gamma[i] = 0
	}
	e.gamma[0] = 1
	for deg, p := range ers {
		a := f.Exp(c.n - 1 - p)
		if row := f.MulRow(a); row != nil {
			for j := deg + 1; j >= 1; j-- {
				e.gamma[j] ^= row[e.gamma[j-1]]
			}
		} else {
			for j := deg + 1; j >= 1; j-- {
				e.gamma[j] ^= f.Mul(e.gamma[j-1], a)
			}
		}
	}

	// oddTop is the highest odd index with rho coefficients in play.
	oddTop := rho
	if oddTop%2 == 0 {
		oddTop--
	}
	e.fastOK = true
	for _, pos := range ers {
		p := c.n - 1 - pos
		x := f.Exp(p)
		xInv := f.Exp(-p)
		// Odd-index partial sum of Gamma at xInv — in characteristic 2
		// this is xInv*Gamma'(xInv), the fused-Forney derivative term —
		// evaluated as a Horner chain in xInv^2 over the odd
		// coefficients, scaled by xInv.
		xi2 := f.Mul(xInv, xInv)
		var odd gf.Elem
		if row := f.MulRow(xi2); row != nil {
			for j := oddTop; j >= 1; j -= 2 {
				odd = row[odd] ^ e.gamma[j]
			}
		} else {
			for j := oddTop; j >= 1; j -= 2 {
				odd = f.Mul(odd, xi2) ^ e.gamma[j]
			}
		}
		odd = f.Mul(odd, xInv)
		if odd == 0 {
			// Distinct valid erasures make every root simple, so this
			// is unreachable; routed to the general Chien/Forney sweep
			// defensively rather than dividing by zero.
			e.fastOK = false
			e.roots = e.roots[:0]
			return
		}
		fcrAdj := gf.Elem(1)
		if c.fcr != 1 {
			fcrAdj = f.Pow(x, 1-c.fcr)
		}
		e.roots = append(e.roots, erasureRoot{
			pos:      pos,
			x:        x,
			xInv:     xInv,
			invDenom: f.Inv(f.Mul(odd, x)),
			fcrAdj:   fcrAdj,
			synBase:  f.Exp(c.fcr * p),
		})
	}
}
