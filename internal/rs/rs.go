// Package rs implements systematic Reed-Solomon codes over GF(2^m)
// with full errors-and-erasures decoding.
//
// An RS(n,k) code over GF(2^m) (n <= 2^m - 1, shortened codes allowed)
// encodes k data symbols into n codeword symbols and corrects any
// pattern of er erasures and re random errors with
//
//	2*re + er <= n - k.
//
// In the memory systems of the DATE'05 paper reproduced here,
// permanent faults located by self-checking hardware are erasures and
// SEU bit flips are random errors, so both decoding modes matter. The
// decoder reports whether it applied a correction (the "flag" consumed
// by the duplex arbiter of internal/arbiter) and distinguishes
// detected decoding failures from successes; mis-corrections (decoding
// to a wrong but valid codeword when the error pattern exceeds the
// code's capability) are possible by the nature of bounded-distance
// decoding and are exercised explicitly in the tests and the Monte
// Carlo simulator.
//
// The implementation is textbook Blahut: syndromes, erasure-locator
// initialized Berlekamp-Massey, Chien search and the Forney algorithm.
package rs

import (
	"errors"
	"fmt"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

// Code is a Reed-Solomon code RS(n,k) over a fixed GF(2^m).
// It is immutable after construction and safe for concurrent use.
type Code struct {
	f    *gf.Field
	ring *gfpoly.Ring
	n    int // codeword length in symbols
	k    int // dataword length in symbols
	fcr  int // power of alpha of the first consecutive generator root
	gen  gfpoly.Poly
}

// ErrUncorrectable is returned (wrapped) by Decode when the received
// word is recognized as beyond the code's correction capability.
// Bounded-distance decoding cannot detect every such pattern; the
// undetected remainder surfaces as mis-correction.
var ErrUncorrectable = errors.New("rs: uncorrectable word")

// New returns the code RS(n,k) over the field f with the conventional
// first consecutive root alpha^1.
func New(f *gf.Field, n, k int) (*Code, error) { return NewWithFCR(f, n, k, 1) }

// MustNew is New for static configuration; it panics on error.
func MustNew(f *gf.Field, n, k int) *Code {
	c, err := New(f, n, k)
	if err != nil {
		panic(err)
	}
	return c
}

// NewWithFCR returns RS(n,k) over f with generator roots
// alpha^fcr .. alpha^(fcr+n-k-1).
func NewWithFCR(f *gf.Field, n, k, fcr int) (*Code, error) {
	switch {
	case f == nil:
		return nil, errors.New("rs: nil field")
	case n <= 0 || k <= 0:
		return nil, fmt.Errorf("rs: nonpositive parameters n=%d k=%d", n, k)
	case k >= n:
		return nil, fmt.Errorf("rs: k=%d must be less than n=%d", k, n)
	case n > f.N():
		return nil, fmt.Errorf("rs: n=%d exceeds field limit 2^m-1=%d", n, f.N())
	case fcr < 0:
		return nil, fmt.Errorf("rs: negative fcr=%d", fcr)
	}
	c := &Code{f: f, ring: gfpoly.NewRing(f), n: n, k: k, fcr: fcr}
	g := gfpoly.One()
	for j := 0; j < n-k; j++ {
		g = c.ring.Mul(g, gfpoly.Poly{f.Exp(fcr + j), 1})
	}
	c.gen = g
	return c, nil
}

// Field returns the underlying finite field.
func (c *Code) Field() *gf.Field { return c.f }

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the dataword length in symbols.
func (c *Code) K() int { return c.k }

// Redundancy returns n-k, the number of check symbols.
func (c *Code) Redundancy() int { return c.n - c.k }

// T returns the random-error correction capability floor((n-k)/2).
func (c *Code) T() int { return (c.n - c.k) / 2 }

// FCR returns the power of alpha of the first consecutive root.
func (c *Code) FCR() int { return c.fcr }

// Generator returns a copy of the generator polynomial.
func (c *Code) Generator() gfpoly.Poly { return c.gen.Clone() }

// CanCorrect reports whether a pattern of the given erasure and random
// error counts is within the guaranteed correction capability:
// 2*errors + erasures <= n-k.
func (c *Code) CanCorrect(erasures, randomErrors int) bool {
	return erasures >= 0 && randomErrors >= 0 && 2*randomErrors+erasures <= c.n-c.k
}

// String identifies the code, e.g. "RS(18,16) over GF(2^8, poly=0x11d)".
func (c *Code) String() string {
	return fmt.Sprintf("RS(%d,%d) over %v", c.n, c.k, c.f)
}

// checkSymbols verifies every symbol of w is a valid field element.
func (c *Code) checkSymbols(w []gf.Elem) error {
	for i, s := range w {
		if !c.f.Valid(s) {
			return fmt.Errorf("rs: symbol %d (=%d) out of range for %v", i, s, c.f)
		}
	}
	return nil
}

// Encode systematically encodes k data symbols into a fresh n-symbol
// codeword laid out as data followed by check symbols.
func (c *Code) Encode(data []gf.Elem) ([]gf.Elem, error) {
	cw := make([]gf.Elem, c.n)
	if err := c.EncodeTo(cw, data); err != nil {
		return nil, err
	}
	return cw, nil
}

// EncodeTo encodes data into dst, which must have length n. dst and
// data may overlap only if dst[:k] aliases data exactly.
func (c *Code) EncodeTo(dst, data []gf.Elem) error {
	if len(data) != c.k {
		return fmt.Errorf("rs: dataword has %d symbols, want k=%d", len(data), c.k)
	}
	if len(dst) != c.n {
		return fmt.Errorf("rs: destination has %d symbols, want n=%d", len(dst), c.n)
	}
	if err := c.checkSymbols(data); err != nil {
		return err
	}
	// Codeword symbol i is the coefficient of x^(n-1-i): the message
	// occupies the high-degree end, the remainder of M(x)*x^(n-k)
	// modulo g(x) fills the check positions.
	msg := make(gfpoly.Poly, c.n)
	for i, s := range data {
		msg[c.n-1-i] = s
	}
	rem := c.ring.Mod(msg, c.gen)
	copy(dst, data)
	for i := c.k; i < c.n; i++ {
		dst[i] = rem.Coeff(c.n - 1 - i)
	}
	return nil
}

// Syndromes returns the n-k syndrome values of the word:
// S_j = W(alpha^(fcr+j)), j = 0..n-k-1, where W is the word polynomial
// with symbol i as the coefficient of x^(n-1-i). The word is a
// codeword iff all syndromes vanish.
func (c *Code) Syndromes(word []gf.Elem) (gfpoly.Poly, error) {
	if len(word) != c.n {
		return nil, fmt.Errorf("rs: word has %d symbols, want n=%d", len(word), c.n)
	}
	if err := c.checkSymbols(word); err != nil {
		return nil, err
	}
	d := c.n - c.k
	syn := make(gfpoly.Poly, d)
	for j := 0; j < d; j++ {
		x := c.f.Exp(c.fcr + j)
		var acc gf.Elem
		// Horner over coefficients in descending degree = word order.
		for _, s := range word {
			acc = c.f.Mul(acc, x) ^ s
		}
		syn[j] = acc
	}
	return syn, nil
}

// IsCodeword reports whether word is a valid codeword of c.
func (c *Code) IsCodeword(word []gf.Elem) bool {
	syn, err := c.Syndromes(word)
	if err != nil {
		return false
	}
	return syn.IsZero()
}

// Result reports the outcome of a successful Decode.
type Result struct {
	// Codeword is the corrected n-symbol codeword.
	Codeword []gf.Elem
	// Data is the corrected k-symbol dataword (aliases Codeword[:k]).
	Data []gf.Elem
	// Corrections is the number of symbols whose value was changed.
	// Erased positions whose stored value happened to be right do not
	// count.
	Corrections int
	// Flag is the paper's arbiter flag: set when any correction was
	// performed and completed.
	Flag bool
	// ErrorPositions lists the symbol indices that were changed,
	// in increasing order.
	ErrorPositions []int
}

// Decode corrects the received word in place of a copy, treating the
// listed positions (codeword indices, 0-based) as erasures. It returns
// a Result on success and a wrapped ErrUncorrectable on a *detected*
// decoding failure. An undetected failure — mis-correction to a valid
// but wrong codeword — returns success by construction of
// bounded-distance decoding; callers that know the ground truth (the
// simulator, the tests) can compare Codeword against it.
//
// Decode solves the key equation with erasure-initialized
// Berlekamp-Massey; DecodeEuclidean is the independent Sugiyama
// implementation with identical input/output behavior.
func (c *Code) Decode(received []gf.Elem, erasures []int) (*Result, error) {
	return c.decode(received, erasures, c.berlekampMassey)
}

// DecodeEuclidean is Decode with the key equation solved by the
// Sugiyama extended-Euclidean algorithm instead of Berlekamp-Massey.
// Both are bounded-distance decoders of the same code, so they accept
// and reject exactly the same received words and produce identical
// codewords — a property the tests enforce; production use can pick
// either (BM allocates less, Euclid is easier to audit).
func (c *Code) DecodeEuclidean(received []gf.Elem, erasures []int) (*Result, error) {
	return c.decode(received, erasures, c.euclid)
}

// decode runs the shared decoding pipeline around a key-equation
// solver that maps (syndromes, erasure locator, erasure count) to the
// errata locator Psi = Lambda * Gamma.
func (c *Code) decode(received []gf.Elem, erasures []int, solve func(gfpoly.Poly, gfpoly.Poly, int) (gfpoly.Poly, error)) (*Result, error) {
	if len(received) != c.n {
		return nil, fmt.Errorf("rs: word has %d symbols, want n=%d", len(received), c.n)
	}
	if err := c.checkSymbols(received); err != nil {
		return nil, err
	}
	d := c.n - c.k
	seen := make(map[int]bool, len(erasures))
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, c.n)
		}
		if seen[p] {
			return nil, fmt.Errorf("rs: duplicate erasure position %d", p)
		}
		seen[p] = true
	}
	if len(erasures) > d {
		return nil, fmt.Errorf("%w: %d erasures exceed n-k=%d", ErrUncorrectable, len(erasures), d)
	}

	syn, err := c.Syndromes(received)
	if err != nil {
		return nil, err
	}
	word := make([]gf.Elem, c.n)
	copy(word, received)
	if syn.IsZero() {
		// Already a codeword. Erased positions hold consistent values.
		return c.result(word, received), nil
	}

	// Erasure locator Gamma(x) = prod (1 - x*alpha^(n-1-i)).
	positions := make([]int, len(erasures))
	for i, p := range erasures {
		positions[i] = c.n - 1 - p
	}
	gamma := c.ring.LocatorFromPositions(positions)

	psi, err := solve(syn, gamma, len(erasures))
	if err != nil {
		return nil, err
	}

	// Errata evaluator Omega(x) = S(x)*Psi(x) mod x^(n-k).
	omega := c.ring.ModXPow(c.ring.Mul(syn, psi), d)
	psiDeriv := c.ring.Deriv(psi)

	// Chien search: position i (coefficient power p = n-1-i) is an
	// errata location iff Psi(alpha^-p) = 0.
	nroots := 0
	for i := 0; i < c.n; i++ {
		p := c.n - 1 - i
		xInv := c.f.Exp(-p) // alpha^-p
		if c.ring.Eval(psi, xInv) != 0 {
			continue
		}
		nroots++
		den := c.ring.Eval(psiDeriv, xInv)
		if den == 0 {
			return nil, fmt.Errorf("%w: repeated errata locator root", ErrUncorrectable)
		}
		num := c.ring.Eval(omega, xInv)
		mag := c.f.Div(num, den)
		if c.fcr != 1 {
			// General Forney: Y = X^(1-fcr) * Omega(1/X) / Psi'(1/X).
			mag = c.f.Mul(mag, c.f.Pow(c.f.Exp(p), 1-c.fcr))
		}
		word[i] ^= mag
	}
	if nroots != psi.Degree() {
		// Some locator roots fall outside the (possibly shortened)
		// codeword: the error pattern exceeded the capability.
		return nil, fmt.Errorf("%w: errata locator has %d roots in word, degree %d", ErrUncorrectable, nroots, psi.Degree())
	}
	// Re-check: a successful bounded-distance decode must land on a
	// codeword; anything else is a detected failure.
	check, err := c.Syndromes(word)
	if err != nil {
		return nil, err
	}
	if !check.IsZero() {
		return nil, fmt.Errorf("%w: residual syndromes after correction", ErrUncorrectable)
	}
	return c.result(word, received), nil
}

// result assembles a Result by diffing the corrected word against the
// received one.
func (c *Code) result(word, received []gf.Elem) *Result {
	res := &Result{Codeword: word, Data: word[:c.k]}
	for i := range word {
		if word[i] != received[i] {
			res.Corrections++
			res.ErrorPositions = append(res.ErrorPositions, i)
		}
	}
	res.Flag = res.Corrections > 0
	return res
}

// berlekampMassey runs the erasure-initialized Berlekamp-Massey
// algorithm over the syndromes and returns the errata locator
// Psi = Lambda * Gamma. rho is the erasure count; gamma the erasure
// locator. A detected capability overflow returns ErrUncorrectable.
//
// This is the canonical Massey formulation with an explicit register
// length L (initialized to rho) rather than polynomial degrees, which
// is essential at full capability where degree bookkeeping and
// register length diverge.
func (c *Code) berlekampMassey(syn gfpoly.Poly, gamma gfpoly.Poly, rho int) (gfpoly.Poly, error) {
	d := c.n - c.k
	lambda := gamma.Clone()
	if lambda == nil {
		lambda = gfpoly.One()
	}
	bpoly := lambda.Clone() // last length-change locator
	bdelta := gf.Elem(1)    // discrepancy at last length change
	shift := 1              // x-power accumulated since last length change
	length := rho           // current errata register length

	for k := rho; k < d; k++ {
		// Discrepancy delta = sum_j Lambda_j * S_(k-j).
		var delta gf.Elem
		for j := 0; j <= lambda.Degree() && j <= k; j++ {
			delta ^= c.f.Mul(lambda.Coeff(j), syn.Coeff(k-j))
		}
		if delta == 0 {
			shift++
			continue
		}
		next := c.ring.Add(lambda, c.ring.Scale(c.ring.MulXPow(bpoly, shift), c.f.Div(delta, bdelta)))
		if 2*length <= k+rho {
			bpoly = lambda
			bdelta = delta
			length = k + 1 + rho - length
			shift = 1
		} else {
			shift++
		}
		lambda = next
	}
	errs := length - rho
	if errs < 0 || 2*errs+rho > d || lambda.Degree() != length {
		return nil, fmt.Errorf("%w: %d errors with %d erasures exceed n-k=%d", ErrUncorrectable, errs, rho, d)
	}
	return lambda, nil
}

// euclid solves the key equation by the Sugiyama extended-Euclidean
// algorithm: run Euclid on (x^d, Xi) where Xi = S*Gamma mod x^d are
// the modified syndromes, stopping when the remainder degree drops
// below (d+rho)/2; the accumulated multiplier is the error locator
// Lambda, and Psi = Lambda * Gamma.
func (c *Code) euclid(syn gfpoly.Poly, gamma gfpoly.Poly, rho int) (gfpoly.Poly, error) {
	d := c.n - c.k
	g := gamma.Clone()
	if g == nil {
		g = gfpoly.One()
	}
	xi := c.ring.ModXPow(c.ring.Mul(syn, g), d)
	if xi.IsZero() {
		// All errata sit in erased positions: Lambda = 1.
		return g, nil
	}
	rPrev := gfpoly.Monomial(d, 1)
	rCur := xi
	tPrev := gfpoly.Zero()
	tCur := gfpoly.One()
	stop := (d + rho) / 2
	for rCur.Degree() >= stop {
		quo, rem := c.ring.DivMod(rPrev, rCur)
		rPrev, rCur = rCur, rem
		tPrev, tCur = tCur, c.ring.Add(tPrev, c.ring.Mul(quo, tCur))
		if rCur.IsZero() {
			break
		}
	}
	lambda := tCur
	l0 := lambda.Coeff(0)
	if l0 == 0 {
		return nil, fmt.Errorf("%w: euclid locator has zero constant term", ErrUncorrectable)
	}
	lambda = c.ring.Scale(lambda, c.f.Inv(l0))
	errs := lambda.Degree()
	if 2*errs+rho > d {
		return nil, fmt.Errorf("%w: %d errors with %d erasures exceed n-k=%d", ErrUncorrectable, errs, rho, d)
	}
	return c.ring.Mul(lambda, g), nil
}
