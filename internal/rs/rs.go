// Package rs implements systematic Reed-Solomon codes over GF(2^m)
// with full errors-and-erasures decoding.
//
// An RS(n,k) code over GF(2^m) (n <= 2^m - 1, shortened codes allowed)
// encodes k data symbols into n codeword symbols and corrects any
// pattern of er erasures and re random errors with
//
//	2*re + er <= n - k.
//
// In the memory systems of the DATE'05 paper reproduced here,
// permanent faults located by self-checking hardware are erasures and
// SEU bit flips are random errors, so both decoding modes matter. The
// decoder reports whether it applied a correction (the "flag" consumed
// by the duplex arbiter of internal/arbiter) and distinguishes
// detected decoding failures from successes; mis-corrections (decoding
// to a wrong but valid codeword when the error pattern exceeds the
// code's capability) are possible by the nature of bounded-distance
// decoding and are exercised explicitly in the tests and the Monte
// Carlo simulator.
//
// The implementation is textbook Blahut — syndromes, erasure-locator
// initialized Berlekamp-Massey, Chien search and the Forney algorithm
// — organized as streaming kernels: encoding is a parity LFSR over the
// generator taps writing directly into the destination, and decoding
// runs through a reusable Decoder workspace so the steady state of a
// simulation campaign performs no heap allocation.
//
// # Zero-allocation contract
//
// EncodeTo and SyndromesInto never allocate. A Decoder obtained from
// Code.NewDecoder owns every scratch buffer decoding needs (syndromes,
// locator/evaluator registers, erasure bitset, corrected word) and its
// Decode method is allocation-free on every successful path — clean
// words, random errors, erasures — returning a Result whose slices
// alias the workspace and stay valid only until the next call on that
// Decoder. Prefer Decoder.Decode in hot loops (one Decoder per
// goroutine; a Decoder is not safe for concurrent use). The
// Code.Decode / Code.DecodeEuclidean wrappers keep the original
// callers working: they borrow a pooled Decoder for the heavy scratch
// and return an independent Result the caller may retain, at the cost
// of the Result's own slices being freshly allocated.
//
// # Batch decode: arenas, strides and the clean-word fast path
//
// Scrub-scale workloads decode every resident word each pass, and
// almost all of those words are still valid codewords. The batch
// layer (Batch, BatchDecoder, DecodeAll) is built around that skew: a
// Batch describes a contiguous arena of Count words laid out at a
// fixed Stride (word w occupies Words[w*Stride : w*Stride+n]; Stride
// >= n, with any per-word headroom between n and Stride left
// untouched), and DecodeAll screens each erasure-free word with a
// packed syndrome fold over a precomputed contribution table — CRC
// slicing-by-8 transplanted to GF(2^m), four 16-bit syndrome symbols
// per uint64 row — accepting clean words without ever entering the
// Berlekamp-Massey/Chien pipeline. The screen folds syndromes for
// every word, erasures included, and a dirty word's folded syndromes
// are handed straight to the per-word pipeline (the byte lanes unpack
// into the Decoder's syndrome registers), so no word ever recomputes
// the O(n·d) Horner syndromes the screen already paid for. Dirty
// words are corrected in place in the arena, and every word's outcome
// (corrected symbols, acceptance, error classification) is identical
// to a per-word Decoder.Decode loop — just much faster when the arena
// is mostly clean.
//
// Erasure-carrying words lean on a per-BatchDecoder erasure-set
// cache: the erasure locator Γ(x) and its Chien/Forney setup depend
// only on the position set, which scrub workloads repeat heavily (one
// located-column list for a whole page arena), so the cache keys on
// the list's content and an erasure-only word — syndromes explained
// by Γ alone — completes by evaluating the cached roots, with no
// Berlekamp-Massey iteration and no Chien sweep. The lists passed to
// DecodeAll must not be mutated during the call and may be shared
// between words (see Batch); sharing one list arena-wide is the fast
// path.
//
// DecodeAll is serial by default; BatchDecoder.SetWorkers shards the
// arena into contiguous word ranges decoded by a persistent worker
// pool, with results bit-identical for every worker count. For stores
// larger than memory, BatchDecoder.DecodeStream scrubs an unbounded
// word sequence chunk by chunk through caller fill/emit callbacks,
// reusing one sub-arena (see its chunk contract).
//
// A BatchDecoder from Code.NewBatchDecoder owns its scratch like a
// Decoder does (one per goroutine, results valid until the next call)
// and its steady state allocates nothing; the contribution table
// itself lives on the Code, built once and shared. Codes whose table
// would be too large (or whose field has no multiplication table)
// transparently fall back to the per-word pipeline for every word.
package rs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

// Code is a Reed-Solomon code RS(n,k) over a fixed GF(2^m).
// It is immutable after construction and safe for concurrent use.
type Code struct {
	f    *gf.Field
	ring *gfpoly.Ring
	n    int // codeword length in symbols
	k    int // dataword length in symbols
	fcr  int // power of alpha of the first consecutive generator root
	gen  gfpoly.Poly

	// genRev[j] = gen[d-1-j]: the LFSR feedback taps in shift-register
	// order (tap 0 multiplies into the highest-degree parity slot).
	genRev []gf.Elem
	// synX[j] = alpha^(fcr+j): the syndrome evaluation points.
	synX []gf.Elem
	// chienInit[j] = alpha^(-(n-1)*j) and chienStep[j] = alpha^j seed
	// and advance the term registers of the incremental Chien search.
	chienInit []gf.Elem
	chienStep []gf.Elem
	// chienRow[j] is the multiplication-table row of chienStep[j]
	// (nil for fields without row tables): one load per register
	// advance instead of a general multiply.
	chienRow [][]gf.Elem

	// decPool recycles Decoder workspaces for the allocating
	// Decode/DecodeEuclidean wrappers.
	decPool sync.Pool

	// batchOnce/batchTab lazily build and hold the packed
	// syndrome-contribution table behind the batch decode fast path
	// (see batch.go); the table is shared by every BatchDecoder of
	// this code.
	batchOnce sync.Once
	batchTab  batchTable
}

// ErrUncorrectable is returned (wrapped) by Decode when the received
// word is recognized as beyond the code's correction capability.
// Bounded-distance decoding cannot detect every such pattern; the
// undetected remainder surfaces as mis-correction.
var ErrUncorrectable = errors.New("rs: uncorrectable word")

// New returns the code RS(n,k) over the field f with the conventional
// first consecutive root alpha^1.
func New(f *gf.Field, n, k int) (*Code, error) { return NewWithFCR(f, n, k, 1) }

// MustNew is New for static configuration; it panics on error.
func MustNew(f *gf.Field, n, k int) *Code {
	c, err := New(f, n, k)
	if err != nil {
		panic(err)
	}
	return c
}

// NewWithFCR returns RS(n,k) over f with generator roots
// alpha^fcr .. alpha^(fcr+n-k-1).
func NewWithFCR(f *gf.Field, n, k, fcr int) (*Code, error) {
	switch {
	case f == nil:
		return nil, errors.New("rs: nil field")
	case n <= 0 || k <= 0:
		return nil, fmt.Errorf("rs: nonpositive parameters n=%d k=%d", n, k)
	case k >= n:
		return nil, fmt.Errorf("rs: k=%d must be less than n=%d", k, n)
	case n > f.N():
		return nil, fmt.Errorf("rs: n=%d exceeds field limit 2^m-1=%d", n, f.N())
	case fcr < 0:
		return nil, fmt.Errorf("rs: negative fcr=%d", fcr)
	}
	c := &Code{f: f, ring: gfpoly.NewRing(f), n: n, k: k, fcr: fcr}
	g := gfpoly.One()
	for j := 0; j < n-k; j++ {
		g = c.ring.Mul(g, gfpoly.Poly{f.Exp(fcr + j), 1})
	}
	c.gen = g

	d := n - k
	c.genRev = make([]gf.Elem, d)
	c.synX = make([]gf.Elem, d)
	for j := 0; j < d; j++ {
		c.genRev[j] = g.Coeff(d - 1 - j)
		c.synX[j] = f.Exp(fcr + j)
	}
	c.chienInit = make([]gf.Elem, d+1)
	c.chienStep = make([]gf.Elem, d+1)
	c.chienRow = make([][]gf.Elem, d+1)
	for j := 0; j <= d; j++ {
		c.chienInit[j] = f.Exp(-(n - 1) * j)
		c.chienStep[j] = f.Exp(j)
		c.chienRow[j] = f.MulRow(c.chienStep[j])
	}
	c.decPool.New = func() any { return c.NewDecoder() }
	return c, nil
}

// Field returns the underlying finite field.
func (c *Code) Field() *gf.Field { return c.f }

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the dataword length in symbols.
func (c *Code) K() int { return c.k }

// Redundancy returns n-k, the number of check symbols.
func (c *Code) Redundancy() int { return c.n - c.k }

// T returns the random-error correction capability floor((n-k)/2).
func (c *Code) T() int { return (c.n - c.k) / 2 }

// FCR returns the power of alpha of the first consecutive root.
func (c *Code) FCR() int { return c.fcr }

// Generator returns a copy of the generator polynomial.
func (c *Code) Generator() gfpoly.Poly { return c.gen.Clone() }

// CanCorrect reports whether a pattern of the given erasure and random
// error counts is within the guaranteed correction capability:
// 2*errors + erasures <= n-k.
func (c *Code) CanCorrect(erasures, randomErrors int) bool {
	return erasures >= 0 && randomErrors >= 0 && 2*randomErrors+erasures <= c.n-c.k
}

// String identifies the code, e.g. "RS(18,16) over GF(2^8, poly=0x11d)".
func (c *Code) String() string {
	return fmt.Sprintf("RS(%d,%d) over %v", c.n, c.k, c.f)
}

// checkSymbols verifies every symbol of w is a valid field element.
// It is the single validation point of the public boundary: internal
// kernels index multiplication tables by symbol value and rely on it.
func (c *Code) checkSymbols(w []gf.Elem) error {
	for i, s := range w {
		if !c.f.Valid(s) {
			return fmt.Errorf("rs: symbol %d (=%d) out of range for %v", i, s, c.f)
		}
	}
	return nil
}

// Encode systematically encodes k data symbols into a fresh n-symbol
// codeword laid out as data followed by check symbols.
func (c *Code) Encode(data []gf.Elem) ([]gf.Elem, error) {
	cw := make([]gf.Elem, c.n)
	if err := c.EncodeTo(cw, data); err != nil {
		return nil, err
	}
	return cw, nil
}

// EncodeTo encodes data into dst, which must have length n. dst and
// data may overlap only if dst[:k] aliases data exactly. EncodeTo
// performs no allocation: the check symbols are produced by a parity
// LFSR clocked once per data symbol, using dst[k:] itself as the
// shift register.
func (c *Code) EncodeTo(dst, data []gf.Elem) error {
	if len(data) != c.k {
		return fmt.Errorf("rs: dataword has %d symbols, want k=%d", len(data), c.k)
	}
	if len(dst) != c.n {
		return fmt.Errorf("rs: destination has %d symbols, want n=%d", len(dst), c.n)
	}
	if err := c.checkSymbols(data); err != nil {
		return err
	}
	// Codeword symbol i is the coefficient of x^(n-1-i): the message
	// occupies the high-degree end, the remainder of M(x)*x^(n-k)
	// modulo g(x) fills the check positions. The remainder is computed
	// by the classic LFSR recurrence: with the monic generator
	// g(x) = x^d + gLow(x), feeding symbol s updates the register to
	// r <- r*x ^ fb*gLow where fb = s ^ r[top].
	copy(dst, data)
	d := c.n - c.k
	par := dst[c.k:] // par[j] holds the coefficient of x^(d-1-j)
	for i := range par {
		par[i] = 0
	}
	f := c.f
	for _, s := range data {
		fb := s ^ par[0]
		if fb == 0 {
			copy(par, par[1:])
			par[d-1] = 0
			continue
		}
		if row := f.MulRow(fb); row != nil {
			for j := 0; j < d-1; j++ {
				par[j] = par[j+1] ^ row[c.genRev[j]]
			}
			par[d-1] = row[c.genRev[d-1]]
		} else {
			for j := 0; j < d-1; j++ {
				par[j] = par[j+1] ^ f.Mul(fb, c.genRev[j])
			}
			par[d-1] = f.Mul(fb, c.genRev[d-1])
		}
	}
	return nil
}

// syndromes computes the n-k syndromes of word into dst without
// validating symbols; callers must have validated word at the public
// boundary (or produced it themselves).
func (c *Code) syndromes(dst []gf.Elem, word []gf.Elem) {
	f := c.f
	// Four syndromes per pass: each Horner recurrence is a serial chain
	// of dependent table lookups, so interleaving independent chains
	// lets the pipeline overlap the load latencies.
	j := 0
	for ; j+3 < len(c.synX); j += 4 {
		x0, x1, x2, x3 := c.synX[j], c.synX[j+1], c.synX[j+2], c.synX[j+3]
		var a0, a1, a2, a3 gf.Elem
		if row0 := f.MulRow(x0); row0 != nil {
			row1, row2, row3 := f.MulRow(x1), f.MulRow(x2), f.MulRow(x3)
			for _, s := range word {
				a0 = row0[a0] ^ s
				a1 = row1[a1] ^ s
				a2 = row2[a2] ^ s
				a3 = row3[a3] ^ s
			}
		} else {
			for _, s := range word {
				a0 = f.Mul(a0, x0) ^ s
				a1 = f.Mul(a1, x1) ^ s
				a2 = f.Mul(a2, x2) ^ s
				a3 = f.Mul(a3, x3) ^ s
			}
		}
		dst[j], dst[j+1], dst[j+2], dst[j+3] = a0, a1, a2, a3
	}
	for ; j < len(c.synX); j++ {
		x := c.synX[j]
		var acc gf.Elem
		if row := f.MulRow(x); row != nil {
			for _, s := range word {
				acc = row[acc] ^ s
			}
		} else {
			for _, s := range word {
				acc = f.Mul(acc, x) ^ s
			}
		}
		dst[j] = acc
	}
}

func allZero(p []gf.Elem) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}

// Syndromes returns the n-k syndrome values of the word:
// S_j = W(alpha^(fcr+j)), j = 0..n-k-1, where W is the word polynomial
// with symbol i as the coefficient of x^(n-1-i). The word is a
// codeword iff all syndromes vanish.
func (c *Code) Syndromes(word []gf.Elem) (gfpoly.Poly, error) {
	syn := make(gfpoly.Poly, c.n-c.k)
	if err := c.SyndromesInto(syn, word); err != nil {
		return nil, err
	}
	return syn, nil
}

// SyndromesInto computes the n-k syndromes of word into dst, which
// must have length n-k. It performs no allocation.
func (c *Code) SyndromesInto(dst []gf.Elem, word []gf.Elem) error {
	if len(dst) != c.n-c.k {
		return fmt.Errorf("rs: syndrome destination has %d symbols, want n-k=%d", len(dst), c.n-c.k)
	}
	if len(word) != c.n {
		return fmt.Errorf("rs: word has %d symbols, want n=%d", len(word), c.n)
	}
	if err := c.checkSymbols(word); err != nil {
		return err
	}
	c.syndromes(dst, word)
	return nil
}

// IsCodeword reports whether word is a valid codeword of c.
func (c *Code) IsCodeword(word []gf.Elem) bool {
	syn, err := c.Syndromes(word)
	if err != nil {
		return false
	}
	return syn.IsZero()
}

// Result reports the outcome of a successful Decode.
type Result struct {
	// Codeword is the corrected n-symbol codeword.
	Codeword []gf.Elem
	// Data is the corrected k-symbol dataword (aliases Codeword[:k]).
	Data []gf.Elem
	// Corrections is the number of symbols whose value was changed.
	// Erased positions whose stored value happened to be right do not
	// count.
	Corrections int
	// Flag is the paper's arbiter flag: set when any correction was
	// performed and completed.
	Flag bool
	// ErrorPositions lists the symbol indices that were changed,
	// in increasing order.
	ErrorPositions []int
}

// Decoder is a reusable decoding workspace for one Code. It owns every
// scratch buffer the decoding pipeline needs, so steady-state decoding
// through it performs no heap allocation.
//
// A Decoder is NOT safe for concurrent use; create one per goroutine
// with Code.NewDecoder. The Result returned by its methods (and every
// slice inside it) aliases the workspace and is valid only until the
// next call on the same Decoder — callers that need to retain it must
// copy, or use the allocating Code.Decode wrapper.
type Decoder struct {
	c *Code

	syn    []gf.Elem // n-k syndrome register
	gamma  []gf.Elem // erasure locator, zero-padded to d+1
	psi    []gf.Elem // errata locator Psi = Lambda*Gamma, zero-padded
	bprev  []gf.Elem // BM last length-change locator
	tmp    []gf.Elem // BM update scratch
	omega  []gf.Elem // errata evaluator Omega = S*Psi mod x^d
	cpsi   []gf.Elem // Chien term registers for Psi
	psiDeg int       // degree of psi after the key-equation solve

	erased []bool    // erasure bitset over codeword positions
	word   []gf.Elem // corrected word
	errPos []int     // ErrorPositions backing store
	res    Result

	// bmPure records whether the last berlekampMassey run saw every
	// discrepancy vanish — i.e. the syndromes are fully explained by
	// the erasure locator and Psi == Gamma. The batch layer's
	// erasure-only fast path keys on it.
	bmPure bool
}

// NewDecoder returns a fresh decoding workspace for c.
func (c *Code) NewDecoder() *Decoder {
	d := c.n - c.k
	return &Decoder{
		c:      c,
		syn:    make([]gf.Elem, d),
		gamma:  make([]gf.Elem, d+1),
		psi:    make([]gf.Elem, d+1),
		bprev:  make([]gf.Elem, d+1),
		tmp:    make([]gf.Elem, d+1),
		omega:  make([]gf.Elem, d),
		cpsi:   make([]gf.Elem, d+1),
		erased: make([]bool, c.n),
		word:   make([]gf.Elem, c.n),
		errPos: make([]int, 0, c.n),
	}
}

// Code returns the code this workspace decodes.
func (dec *Decoder) Code() *Code { return dec.c }

// Decode corrects the received word into the workspace, treating the
// listed positions (codeword indices, 0-based) as erasures, solving
// the key equation with erasure-initialized Berlekamp-Massey. See
// Code.Decode for the decoding semantics and the Decoder type for the
// aliasing contract of the returned Result.
func (dec *Decoder) Decode(received []gf.Elem, erasures []int) (*Result, error) {
	return dec.decode(received, erasures, false)
}

// DecodeEuclidean is Decoder.Decode with the key equation solved by
// the Sugiyama extended-Euclidean algorithm. Unlike the BM path it
// allocates during the solve (it is the audit implementation, not the
// hot one); the rest of the pipeline still runs in the workspace.
func (dec *Decoder) DecodeEuclidean(received []gf.Elem, erasures []int) (*Result, error) {
	return dec.decode(received, erasures, true)
}

// Decode corrects the received word in place of a copy, treating the
// listed positions (codeword indices, 0-based) as erasures. It returns
// a Result on success and a wrapped ErrUncorrectable on a *detected*
// decoding failure. An undetected failure — mis-correction to a valid
// but wrong codeword — returns success by construction of
// bounded-distance decoding; callers that know the ground truth (the
// simulator, the tests) can compare Codeword against it.
//
// Decode solves the key equation with erasure-initialized
// Berlekamp-Massey; DecodeEuclidean is the independent Sugiyama
// implementation with identical input/output behavior. Both borrow a
// pooled Decoder for scratch and return an independent Result; hot
// loops should hold their own Decoder and call its methods instead.
func (c *Code) Decode(received []gf.Elem, erasures []int) (*Result, error) {
	return c.decodePooled(received, erasures, false)
}

// DecodeEuclidean is Decode with the key equation solved by the
// Sugiyama extended-Euclidean algorithm instead of Berlekamp-Massey.
// Both are bounded-distance decoders of the same code, so they accept
// and reject exactly the same received words and produce identical
// codewords — a property the tests enforce; production use can pick
// either (BM allocates less, Euclid is easier to audit).
func (c *Code) DecodeEuclidean(received []gf.Elem, erasures []int) (*Result, error) {
	return c.decodePooled(received, erasures, true)
}

// decodePooled runs a workspace decode on a pooled Decoder and copies
// the Result out so the caller may retain it.
func (c *Code) decodePooled(received []gf.Elem, erasures []int, euclid bool) (*Result, error) {
	dec := c.decPool.Get().(*Decoder)
	res, err := dec.decode(received, erasures, euclid)
	if err != nil {
		c.decPool.Put(dec)
		return nil, err
	}
	out := &Result{
		Codeword:    append([]gf.Elem(nil), res.Codeword...),
		Corrections: res.Corrections,
		Flag:        res.Flag,
	}
	out.Data = out.Codeword[:c.k]
	if len(res.ErrorPositions) > 0 {
		out.ErrorPositions = append([]int(nil), res.ErrorPositions...)
	}
	c.decPool.Put(dec)
	return out, nil
}

// decode runs the decoding pipeline in the workspace: validate once at
// the public boundary, syndromes, erasure locator, key-equation solve,
// evaluator, fused incremental Chien/Forney sweep, and the final
// syndrome re-check on the (self-produced, hence unvalidated)
// corrected word.
func (dec *Decoder) decode(received []gf.Elem, erasures []int, euclid bool) (*Result, error) {
	c := dec.c
	d := c.n - c.k
	if len(received) != c.n {
		return nil, fmt.Errorf("rs: word has %d symbols, want n=%d", len(received), c.n)
	}
	if err := c.checkSymbols(received); err != nil {
		return nil, err
	}
	for i := range dec.erased {
		dec.erased[i] = false
	}
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, c.n)
		}
		if dec.erased[p] {
			return nil, fmt.Errorf("rs: duplicate erasure position %d", p)
		}
		dec.erased[p] = true
	}
	rho := len(erasures)
	if rho > d {
		return nil, fmt.Errorf("%w: %d erasures exceed n-k=%d", ErrUncorrectable, rho, d)
	}

	c.syndromes(dec.syn, received)
	copy(dec.word, received)
	if allZero(dec.syn) {
		// Already a codeword. Erased positions hold consistent values.
		return dec.buildResult(received), nil
	}

	// Erasure locator Gamma(x) = prod (1 - x*alpha^(n-1-i)), built by
	// in-place multiplication with one linear factor per erasure.
	gamma := dec.gamma
	for i := range gamma {
		gamma[i] = 0
	}
	gamma[0] = 1
	for deg, p := range erasures {
		a := c.f.Exp(c.n - 1 - p)
		for j := deg + 1; j >= 1; j-- {
			gamma[j] ^= c.f.Mul(gamma[j-1], a)
		}
	}

	var err error
	if euclid {
		err = dec.euclidSolve(rho)
	} else {
		err = dec.berlekampMassey(rho)
	}
	if err != nil {
		return nil, err
	}

	// Errata evaluator Omega(x) = S(x)*Psi(x) mod x^(n-k).
	omega := dec.omega
	for i := range omega {
		omega[i] = 0
	}
	for j := 0; j <= dec.psiDeg && j < d; j++ {
		c.f.AddMulSlice(omega[j:], dec.syn[:d-j], dec.psi[j])
	}

	nroots, err := dec.chienForney()
	if err != nil {
		return nil, err
	}
	if nroots != dec.psiDeg {
		// Some locator roots fall outside the (possibly shortened)
		// codeword: the error pattern exceeded the capability.
		return nil, fmt.Errorf("%w: errata locator has %d roots in word, degree %d", ErrUncorrectable, nroots, dec.psiDeg)
	}
	// Re-check: a successful bounded-distance decode must land on a
	// codeword; anything else is a detected failure. The sweep folded
	// every correction into the syndrome register, so the register now
	// holds the corrected word's syndromes without re-scanning it.
	if !allZero(dec.syn) {
		return nil, fmt.Errorf("%w: residual syndromes after correction", ErrUncorrectable)
	}
	return dec.buildResult(received), nil
}

// buildResult assembles the workspace Result by diffing the corrected
// word against the received one.
func (dec *Decoder) buildResult(received []gf.Elem) *Result {
	res := &dec.res
	res.Codeword = dec.word
	res.Data = dec.word[:dec.c.k]
	res.Corrections = 0
	res.ErrorPositions = dec.errPos[:0]
	for i, w := range dec.word {
		if w != received[i] {
			res.Corrections++
			res.ErrorPositions = append(res.ErrorPositions, i)
		}
	}
	res.Flag = res.Corrections > 0
	return res
}

// decodeWithSyndromes runs the decoding pipeline on a word whose n-k
// syndromes already sit in dec.syn — the batch screen's handoff, which
// folded them as packed byte lanes — skipping symbol validation (the
// screen's OR check proved validity), erasure-list validation (the
// caller resolved it through the erasure-set cache and ent.err was
// nil) and the O(n*d) Horner syndrome pass. ent carries the word's
// cached erasure-set setup, or is nil for an erasure-free word. The
// outcome is identical to decode(received, ent.positions, false).
//
// When the erasure-set entry supports it and Berlekamp-Massey saw
// every discrepancy vanish (Psi == Gamma: the syndromes are fully
// explained by the erasures), the correction applies directly at the
// entry's precomputed locator roots and the O(n*deg) Chien sweep is
// skipped entirely.
func (dec *Decoder) decodeWithSyndromes(received []gf.Elem, ent *erasureEntry) (*Result, error) {
	c := dec.c
	d := c.n - c.k
	copy(dec.word, received)
	if allZero(dec.syn) {
		return dec.buildResult(received), nil
	}

	rho := 0
	gamma := dec.gamma
	if ent != nil {
		rho = len(ent.positions)
		copy(gamma, ent.gamma)
	} else {
		for i := range gamma {
			gamma[i] = 0
		}
		gamma[0] = 1
	}

	if err := dec.berlekampMassey(rho); err != nil {
		return nil, err
	}

	omega := dec.omega
	for i := range omega {
		omega[i] = 0
	}
	for j := 0; j <= dec.psiDeg && j < d; j++ {
		c.f.AddMulSlice(omega[j:], dec.syn[:d-j], dec.psi[j])
	}

	if ent != nil && rho > 0 && ent.fastOK && dec.bmPure {
		dec.forneyAtRoots(ent)
	} else {
		nroots, err := dec.chienForney()
		if err != nil {
			return nil, err
		}
		if nroots != dec.psiDeg {
			return nil, fmt.Errorf("%w: errata locator has %d roots in word, degree %d", ErrUncorrectable, nroots, dec.psiDeg)
		}
	}
	if !allZero(dec.syn) {
		return nil, fmt.Errorf("%w: residual syndromes after correction", ErrUncorrectable)
	}
	return dec.buildResult(received), nil
}

// forneyAtRoots applies the Forney correction at the precomputed roots
// of the erasure locator — the erasure-only fast path taken when
// Psi == Gamma, so the errata positions are exactly the erasure set
// and the Chien search would rediscover what the cache already knows.
// The arithmetic is the root-hit body of chienForney verbatim (same
// magnitudes, same syndrome folding), minus the O(n*deg) sweep; the
// caller's residual-syndrome check still stands guard behind it.
func (dec *Decoder) forneyAtRoots(ent *erasureEntry) {
	f := dec.c.f
	omega := dec.omega
	omegaDeg := len(omega) - 1
	for omegaDeg >= 0 && omega[omegaDeg] == 0 {
		omegaDeg--
	}
	fcr1 := dec.c.fcr == 1
	syn := dec.syn
	if f.MulRow(1) != nil {
		// Row-view form: the Horner numerator and the syndrome fold are
		// serial chains of one-constant multiplies, so each runs on a
		// single L1-resident table row instead of log/exp round trips —
		// and two roots' chains are independent, so they interleave to
		// overlap the load latencies (the syndrome folds of a pair XOR
		// into the same register, which is the same GF sum).
		roots := ent.roots
		i := 0
		for ; i+1 < len(roots); i += 2 {
			r0, r1 := &roots[i], &roots[i+1]
			row0, row1 := f.MulRow(r0.xInv), f.MulRow(r1.xInv)
			var n0, n1 gf.Elem
			for j := omegaDeg; j >= 0; j-- {
				w := omega[j]
				n0 = row0[n0] ^ w
				n1 = row1[n1] ^ w
			}
			mag0 := f.Mul(n0, r0.invDenom)
			mag1 := f.Mul(n1, r1.invDenom)
			if !fcr1 {
				mag0 = f.Mul(mag0, r0.fcrAdj)
				mag1 = f.Mul(mag1, r1.fcrAdj)
			}
			dec.word[r0.pos] ^= mag0
			dec.word[r1.pos] ^= mag1
			rx0, rx1 := f.MulRow(r0.x), f.MulRow(r1.x)
			t0 := f.Mul(mag0, r0.synBase)
			t1 := f.Mul(mag1, r1.synBase)
			for j := range syn {
				syn[j] ^= t0 ^ t1
				t0 = rx0[t0]
				t1 = rx1[t1]
			}
		}
		for ; i < len(roots); i++ {
			r := &roots[i]
			rowXInv := f.MulRow(r.xInv)
			var num gf.Elem
			for j := omegaDeg; j >= 0; j-- {
				num = rowXInv[num] ^ omega[j]
			}
			mag := f.Mul(num, r.invDenom)
			if !fcr1 {
				mag = f.Mul(mag, r.fcrAdj)
			}
			dec.word[r.pos] ^= mag
			rowX := f.MulRow(r.x)
			t := f.Mul(mag, r.synBase)
			for j := range syn {
				syn[j] ^= t
				t = rowX[t]
			}
		}
		return
	}
	for _, r := range ent.roots {
		var num gf.Elem
		for j := omegaDeg; j >= 0; j-- {
			num = f.Mul(num, r.xInv) ^ omega[j]
		}
		mag := f.Mul(num, r.invDenom)
		if !fcr1 {
			mag = f.Mul(mag, r.fcrAdj)
		}
		dec.word[r.pos] ^= mag
		t := f.Mul(mag, r.synBase)
		for j := range syn {
			syn[j] ^= t
			t = f.Mul(t, r.x)
		}
	}
}

// chienForney sweeps the codeword positions with the incremental form
// of the Chien search: term register j holds Psi_j * x^j at the
// current evaluation point x = alpha^-(n-1-i) and advances by one
// constant multiply (alpha^j) per position — no polynomial evaluation
// from scratch anywhere in the sweep. The Forney magnitude is fused
// into the same sweep: at a root hit the derivative comes for free
// from the odd-index partial sum (in characteristic 2,
// x*Psi'(x) = sum over odd j of Psi_j x^j), the evaluator numerator is
// a short Horner over Omega's true degree, and dec.word is corrected
// immediately. Returns the number of locator roots found.
func (dec *Decoder) chienForney() (int, error) {
	c, f := dec.c, dec.c.f
	deg := dec.psiDeg
	omega := dec.omega
	omegaDeg := len(omega) - 1
	for omegaDeg >= 0 && omega[omegaDeg] == 0 {
		omegaDeg--
	}
	tp := dec.cpsi
	for j := 0; j <= deg; j++ {
		tp[j] = f.Mul(dec.psi[j], c.chienInit[j])
	}
	nroots := 0
	for i := 0; i < c.n && nroots < deg; i++ {
		// Psi(xInv) splits into even/odd partial sums; their XOR is the
		// full evaluation and the odd half carries the derivative.
		var even, odd gf.Elem
		for j := 0; j <= deg; j += 2 {
			even ^= tp[j]
		}
		for j := 1; j <= deg; j += 2 {
			odd ^= tp[j]
		}
		if even == odd {
			// Position i (coefficient power p = n-1-i) is an errata
			// location: Psi(alpha^-p) = 0.
			nroots++
			if odd == 0 {
				return 0, fmt.Errorf("%w: repeated errata locator root", ErrUncorrectable)
			}
			p := c.n - 1 - i
			xInv := f.Exp(-p)
			var num gf.Elem
			for j := omegaDeg; j >= 0; j-- {
				num = f.Mul(num, xInv) ^ omega[j]
			}
			x := f.Exp(p)
			// odd = xInv * Psi'(xInv), so the derivative is odd * x.
			mag := f.Div(num, f.Mul(odd, x))
			if c.fcr != 1 {
				// General Forney: Y = X^(1-fcr) * Omega(1/X) / Psi'(1/X).
				mag = f.Mul(mag, f.Pow(x, 1-c.fcr))
			}
			dec.word[i] ^= mag
			// Fold the correction into the syndrome register by
			// linearity: S_j of a single errata of magnitude mag at
			// coefficient power p is mag * alpha^((fcr+j)*p). After the
			// sweep the register holds the syndromes of the corrected
			// word, making the final codeword check O(d * roots)
			// instead of a full O(n*d) re-scan.
			t := f.Mul(mag, f.Exp(c.fcr*p))
			for j := range dec.syn {
				dec.syn[j] ^= t
				t = f.Mul(t, x)
			}
		}
		if rows := c.chienRow; rows[0] != nil {
			for j := 1; j <= deg; j++ {
				tp[j] = rows[j][tp[j]]
			}
		} else {
			for j := 1; j <= deg; j++ {
				tp[j] = f.Mul(tp[j], c.chienStep[j])
			}
		}
	}
	return nroots, nil
}

// berlekampMassey runs the erasure-initialized Berlekamp-Massey
// algorithm over the workspace syndromes and leaves the errata locator
// Psi = Lambda * Gamma in dec.psi (rho is the erasure count; dec.gamma
// holds the erasure locator). A detected capability overflow returns
// ErrUncorrectable. The solve is allocation-free: the three locator
// registers rotate among the workspace buffers instead of being
// reallocated per length change.
//
// This is the canonical Massey formulation with an explicit register
// length L (initialized to rho) rather than polynomial degrees, which
// is essential at full capability where degree bookkeeping and
// register length diverge.
func (dec *Decoder) berlekampMassey(rho int) error {
	c, f := dec.c, dec.c.f
	d := c.n - c.k
	lambda, bprev, tmp := dec.psi, dec.bprev, dec.tmp
	copy(lambda, dec.gamma)
	copy(bprev, dec.gamma)
	bdelta := gf.Elem(1) // discrepancy at last length change
	shift := 1           // x-power accumulated since last length change
	length := rho        // current errata register length
	dec.bmPure = true

	for k := rho; k < d; k++ {
		// Discrepancy delta = sum_j Lambda_j * S_(k-j).
		var delta gf.Elem
		hi := k
		if hi > d {
			hi = d
		}
		for j := 0; j <= hi; j++ {
			delta ^= f.Mul(lambda[j], dec.syn[k-j])
		}
		if delta == 0 {
			shift++
			continue
		}
		dec.bmPure = false
		// tmp = lambda + (delta/bdelta) * x^shift * bprev.
		copy(tmp, lambda)
		if shift <= d {
			f.AddMulSlice(tmp[shift:], bprev[:d+1-shift], f.Div(delta, bdelta))
		}
		if 2*length <= k+rho {
			// Length change: the old lambda becomes the reference
			// register; the old reference buffer becomes scratch.
			lambda, bprev, tmp = tmp, lambda, bprev
			bdelta = delta
			length = k + 1 + rho - length
			shift = 1
		} else {
			lambda, tmp = tmp, lambda
			shift++
		}
	}
	dec.psi, dec.bprev, dec.tmp = lambda, bprev, tmp
	deg := -1
	for j := d; j >= 0; j-- {
		if lambda[j] != 0 {
			deg = j
			break
		}
	}
	errs := length - rho
	if errs < 0 || 2*errs+rho > d || deg != length {
		return fmt.Errorf("%w: %d errors with %d erasures exceed n-k=%d", ErrUncorrectable, errs, rho, d)
	}
	dec.psiDeg = deg
	return nil
}

// euclidSolve solves the key equation by the Sugiyama
// extended-Euclidean algorithm: run Euclid on (x^d, Xi) where
// Xi = S*Gamma mod x^d are the modified syndromes, stopping when the
// remainder degree drops below (d+rho)/2; the accumulated multiplier
// is the error locator Lambda, and Psi = Lambda * Gamma is left in
// dec.psi. Unlike the BM path it allocates (gfpoly arithmetic): it is
// the independently-auditable reference solver, not the hot one.
func (dec *Decoder) euclidSolve(rho int) error {
	c := dec.c
	d := c.n - c.k
	ring := c.ring
	g := gfpoly.Poly(dec.gamma).Clone()
	xi := ring.ModXPow(ring.Mul(gfpoly.Poly(dec.syn), g), d)
	if xi.IsZero() {
		// All errata sit in erased positions: Lambda = 1.
		return dec.setPsi(g)
	}
	rPrev := gfpoly.Monomial(d, 1)
	rCur := xi
	tPrev := gfpoly.Zero()
	tCur := gfpoly.One()
	stop := (d + rho) / 2
	for rCur.Degree() >= stop {
		quo, rem := ring.DivMod(rPrev, rCur)
		rPrev, rCur = rCur, rem
		tPrev, tCur = tCur, ring.Add(tPrev, ring.Mul(quo, tCur))
		if rCur.IsZero() {
			break
		}
	}
	lambda := tCur
	l0 := lambda.Coeff(0)
	if l0 == 0 {
		return fmt.Errorf("%w: euclid locator has zero constant term", ErrUncorrectable)
	}
	lambda = ring.Scale(lambda, c.f.Inv(l0))
	errs := lambda.Degree()
	if 2*errs+rho > d {
		return fmt.Errorf("%w: %d errors with %d erasures exceed n-k=%d", ErrUncorrectable, errs, rho, d)
	}
	return dec.setPsi(ring.Mul(lambda, g))
}

// setPsi copies a solver-produced errata locator into the workspace.
func (dec *Decoder) setPsi(psi gfpoly.Poly) error {
	d := dec.c.n - dec.c.k
	deg := psi.Degree()
	if deg > d {
		return fmt.Errorf("%w: errata locator degree %d exceeds n-k=%d", ErrUncorrectable, deg, d)
	}
	for i := range dec.psi {
		dec.psi[i] = psi.Coeff(i)
	}
	dec.psiDeg = deg
	return nil
}
