package rs

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// buildArena fills a count-word arena (with the given stride) with
// random codewords, then corrupts each word according to a randomly
// chosen class — clean, random errors, erasures (distinct lists),
// mixed, beyond-capability, invalid symbols — and sometimes overlays a
// *shared* erasure list (one slice, many words, the stuck-column
// shape), returning the per-word erasure lists and a pristine copy of
// each received word for post-decode comparison.
func buildArena(t *testing.T, rng *rand.Rand, c *Code, count, stride int) (Batch, [][]int, [][]gf.Elem) {
	t.Helper()
	n, d := c.N(), c.Redundancy()
	arena := make([]gf.Elem, (count-1)*stride+n)
	erasures := make([][]int, count)
	received := make([][]gf.Elem, count)
	for w := 0; w < count; w++ {
		word := arena[w*stride : w*stride+n]
		data := randData(rng, c)
		if err := c.EncodeTo(word, data); err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(6) {
		case 0: // clean
		case 1: // correctable random errors
			corruptInPlace(rng, word, rng.Intn(c.T()+1))
		case 2: // correctable erasures (some corrupted, some consistent)
			ec := rng.Intn(d + 1)
			positions := rng.Perm(n)[:ec:ec]
			for _, p := range positions {
				if rng.Intn(4) > 0 {
					word[p] ^= gf.Elem(1 + rng.Intn(c.Field().Size()-1))
				}
			}
			erasures[w] = positions
		case 3: // mixed errors and erasures within capability
			ec := rng.Intn(d + 1)
			positions := rng.Perm(n)[:ec:ec]
			for _, p := range positions {
				word[p] ^= gf.Elem(1 + rng.Intn(c.Field().Size()-1))
			}
			erasures[w] = positions[:rng.Intn(ec+1)]
		case 4: // invalid symbol (out of field range)
			word[rng.Intn(n)] = gf.Elem(c.Field().Size() + rng.Intn(64))
			if rng.Intn(2) == 0 {
				erasures[w] = []int{rng.Intn(n)}
			}
		default: // beyond capability (often — bounded-distance may still accept)
			corruptInPlace(rng, word, c.T()+1+rng.Intn(d))
		}
	}
	if count > 1 && rng.Intn(2) == 0 {
		// Shared-list overlay: one located-column set, one slice,
		// assigned to a contiguous run of words (the arena-wide-shared
		// shape the erasure-set cache is keyed for).
		ec := 1 + rng.Intn(d)
		shared := rng.Perm(n)[:ec:ec]
		lo := rng.Intn(count)
		hi := lo + 1 + rng.Intn(count-lo)
		for w := lo; w < hi; w++ {
			word := arena[w*stride : w*stride+n]
			erasures[w] = shared
			for _, p := range shared {
				if rng.Intn(4) > 0 && int(word[p]) < c.Field().Size() {
					word[p] ^= gf.Elem(1 + rng.Intn(c.Field().Size()-1))
				}
			}
		}
	}
	for w := 0; w < count; w++ {
		received[w] = append([]gf.Elem(nil), arena[w*stride:w*stride+n]...)
	}
	return Batch{Words: arena, Stride: stride, Count: count}, erasures, received
}

// corruptInPlace flips errs distinct symbols of word.
func corruptInPlace(rng *rand.Rand, word []gf.Elem, errs int) {
	for _, p := range rng.Perm(len(word))[:errs] {
		word[p] ^= gf.Elem(1 + rng.Intn(255))
	}
}

// TestDecodeAllMatchesPerWord is the batch/per-word equivalence law:
// over randomized arenas mixing clean words, correctable errors,
// correctable erasures and beyond-capability words, DecodeAll must
// match a per-word Decoder.Decode loop result-for-result — the same
// accept/reject decision, the same error classification, the same
// corrected word and correction count, and failed words left exactly
// as received.
func TestDecodeAllMatchesPerWord(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, params := range [][2]int{{18, 16}, {36, 16}, {255, 223}} {
		c := MustNew(f8, params[0], params[1])
		bd := c.NewBatchDecoder()
		dec := c.NewDecoder()
		rounds := 40
		if params[0] == 255 {
			rounds = 8
		}
		for round := 0; round < rounds; round++ {
			count := 1 + rng.Intn(24)
			stride := c.N() + rng.Intn(3)
			batch, erasures, received := buildArena(t, rng, c, count, stride)
			if rng.Intn(4) == 0 {
				for w := range erasures { // all-nil lists == nil erasures
					if erasures[w] != nil {
						goto keep
					}
				}
				erasures = nil
			}
		keep:
			bres, err := bd.DecodeAll(batch, erasures)
			if err != nil {
				t.Fatal(err)
			}
			if len(bres.Words) != count {
				t.Fatalf("RS(%d,%d): %d word results, want %d", c.N(), c.K(), len(bres.Words), count)
			}
			clean, corrected, failed := 0, 0, 0
			for w := 0; w < count; w++ {
				got := bres.Words[w]
				var ers []int
				if erasures != nil {
					ers = erasures[w]
				}
				want, wantErr := dec.Decode(received[w], ers)
				arenaWord := batch.Words[w*stride : w*stride+c.N()]
				if (got.Err != nil) != (wantErr != nil) {
					t.Fatalf("word %d: batch err=%v, per-word err=%v", w, got.Err, wantErr)
				}
				if wantErr != nil {
					failed++
					if errors.Is(got.Err, ErrUncorrectable) != errors.Is(wantErr, ErrUncorrectable) {
						t.Fatalf("word %d: error classification differs: batch %v, per-word %v", w, got.Err, wantErr)
					}
					if !equalElems(arenaWord, received[w]) {
						t.Fatalf("word %d: failed word was modified in the arena", w)
					}
					continue
				}
				if got.Corrections != want.Corrections {
					t.Fatalf("word %d: %d corrections, per-word %d", w, got.Corrections, want.Corrections)
				}
				if !equalElems(arenaWord, want.Codeword) {
					t.Fatalf("word %d: corrected arena word differs from per-word codeword", w)
				}
				if want.Corrections > 0 {
					corrected++
				} else {
					clean++
				}
			}
			if bres.Clean != clean || bres.Corrected != corrected || bres.Failed != failed {
				t.Fatalf("tallies %d/%d/%d, want %d/%d/%d",
					bres.Clean, bres.Corrected, bres.Failed, clean, corrected, failed)
			}
		}
	}
}

func equalElems(a, b []gf.Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDecodeAllLargeField exercises the per-word fallback for a field
// without a multiplication table (m > 8), where no packed syndrome
// table exists.
func TestDecodeAllLargeField(t *testing.T) {
	f12 := gf.MustField(12)
	c := MustNew(f12, 40, 32)
	if bt := c.batchSyndromeTable(); bt.tab != nil {
		t.Fatal("m=12 built a packed syndrome table; MulRow has no rows to build it from")
	}
	rng := rand.New(rand.NewSource(202))
	bd := c.NewBatchDecoder()
	dec := c.NewDecoder()
	batch, erasures, received := buildArena(t, rng, c, 12, c.N())
	bres, err := bd.DecodeAll(batch, erasures)
	if err != nil {
		t.Fatal(err)
	}
	for w, got := range bres.Words {
		want, wantErr := dec.Decode(received[w], erasures[w])
		if (got.Err != nil) != (wantErr != nil) {
			t.Fatalf("word %d: batch err=%v, per-word err=%v", w, got.Err, wantErr)
		}
		if wantErr == nil && got.Corrections != want.Corrections {
			t.Fatalf("word %d: %d corrections, per-word %d", w, got.Corrections, want.Corrections)
		}
	}
}

// TestDecodeAllValidation covers the arena-shape error paths and the
// per-word validation errors (invalid symbols, bad erasure lists) that
// must classify exactly like Decoder.Decode.
func TestDecodeAllValidation(t *testing.T) {
	c := MustNew(f8, 18, 16)
	bd := c.NewBatchDecoder()
	arena := make([]gf.Elem, 3*18)

	if _, err := bd.DecodeAll(Batch{Words: arena, Stride: 17, Count: 1}, nil); err == nil {
		t.Error("stride below n accepted")
	}
	if _, err := bd.DecodeAll(Batch{Words: arena, Stride: 18, Count: -1}, nil); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := bd.DecodeAll(Batch{Words: arena, Stride: 18, Count: 4}, nil); err == nil {
		t.Error("short arena accepted")
	}
	if _, err := bd.DecodeAll(Batch{Words: arena, Stride: 18, Count: 3}, make([][]int, 2)); err == nil {
		t.Error("erasure list count mismatch accepted")
	}
	res, err := bd.DecodeAll(Batch{Words: arena, Stride: 18, Count: 0}, nil)
	if err != nil || len(res.Words) != 0 {
		t.Errorf("empty batch: res=%+v err=%v", res, err)
	}

	// Per-word validation errors surface in WordResult.Err, not as a
	// batch-level error, and are NOT ErrUncorrectable.
	arena[5] = 0x100 // invalid symbol in word 0 (otherwise a clean codeword)
	res, err = bd.DecodeAll(Batch{Words: arena, Stride: 18, Count: 3},
		[][]int{nil, {2, 2}, {99}})
	if err != nil {
		t.Fatal(err)
	}
	for w, wantSub := range []string{"out of range", "duplicate erasure", "erasure position"} {
		if res.Words[w].Err == nil {
			t.Fatalf("word %d: expected validation error", w)
		}
		if errors.Is(res.Words[w].Err, ErrUncorrectable) {
			t.Errorf("word %d: validation error misclassified as uncorrectable: %v", w, res.Words[w].Err)
		}
		if got := res.Words[w].Err.Error(); !contains(got, wantSub) {
			t.Errorf("word %d: error %q does not mention %q", w, got, wantSub)
		}
	}
	if res.Failed != 3 {
		t.Errorf("Failed=%d, want 3", res.Failed)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBatchSteadyStateZeroAllocs: repeated DecodeAll calls over clean,
// sparse-error and erasure-bearing arenas of a fixed shape must not
// allocate — the scrub steady state.
func TestBatchSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	c := MustNew(f8, 36, 16)
	bd := c.NewBatchDecoder()
	const count = 16
	n := c.N()

	clean := make([]gf.Elem, count*n)
	for w := 0; w < count; w++ {
		if err := c.EncodeTo(clean[w*n:(w+1)*n], randData(rng, c)); err != nil {
			t.Fatal(err)
		}
	}
	sparse := append([]gf.Elem(nil), clean...)
	corruptInPlace(rng, sparse[3*n:4*n], 2)
	erased := append([]gf.Elem(nil), clean...)
	erasures := make([][]int, count)
	erasures[5] = []int{1, 7}
	erased[5*n+1] ^= 0x40

	cases := []struct {
		name  string
		arena []gf.Elem
		ers   [][]int
	}{
		{"clean", clean, nil},
		{"sparse", sparse, nil},
		{"erasures", erased, erasures},
	}
	for _, tc := range cases {
		batch := Batch{Words: tc.arena, Stride: n, Count: count}
		run := func() {
			res, err := bd.DecodeAll(batch, tc.ers)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("%s: %d failed words", tc.name, res.Failed)
			}
		}
		run() // warm the workspace (and re-corrupt nothing: corrections persist in the arena)
		if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestBatchStrideHeadroomUntouched: symbols between n and Stride are
// neither read nor written.
func TestBatchStrideHeadroomUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	c := MustNew(f8, 18, 16)
	bd := c.NewBatchDecoder()
	n, stride, count := c.N(), c.N()+4, 5
	arena := make([]gf.Elem, (count-1)*stride+n)
	for i := range arena {
		arena[i] = 0x1234 // invalid sentinel everywhere, including headroom
	}
	for w := 0; w < count; w++ {
		if err := c.EncodeTo(arena[w*stride:w*stride+n], randData(rng, c)); err != nil {
			t.Fatal(err)
		}
	}
	corruptInPlace(rng, arena[2*stride:2*stride+n], 1)
	res, err := bd.DecodeAll(Batch{Words: arena, Stride: stride, Count: count}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean != 4 || res.Corrected != 1 || res.Failed != 0 {
		t.Fatalf("tallies %d/%d/%d, want 4/1/0", res.Clean, res.Corrected, res.Failed)
	}
	for w := 0; w < count-1; w++ {
		for _, v := range arena[w*stride+n : (w+1)*stride] {
			if v != 0x1234 {
				t.Fatalf("headroom of word %d modified", w)
			}
		}
	}
}
