package rs

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gf"
)

// Arena benchmarks for the batch decode layer. Each op decodes a
// batchWords-word dense arena, so the per-word cost is ns/op divided
// by batchWords; SetBytes counts one byte per arena symbol so the MB/s
// column is directly comparable with the per-word decode benchmarks
// above. The three arena mixes bracket the scrub workload: all-clean
// (pure syndrome screen), sparse errors (1 dirty word in 16), and
// erasure-heavy (every word carries erasures, forcing the per-word
// pipeline throughout).

const batchWords = 64

var batchBenchShapes = []benchShape{
	{name: "RS1816", n: 18, k: 16, errs: 1, erasures: 2},
	{name: "RS255_223", n: 255, k: 223, errs: 16, erasures: 32},
}

func batchBenchSetup(b *testing.B, s benchShape) (*Code, *BatchDecoder, []gf.Elem) {
	b.Helper()
	c := MustNew(f8, s.n, s.k)
	rng := rand.New(rand.NewSource(82))
	arena := make([]gf.Elem, batchWords*s.n)
	for w := 0; w < batchWords; w++ {
		if err := c.EncodeTo(arena[w*s.n:(w+1)*s.n], randData(rng, c)); err != nil {
			b.Fatal(err)
		}
	}
	return c, c.NewBatchDecoder(), arena
}

func BenchmarkBatchDecodeClean(b *testing.B) {
	for _, s := range batchBenchShapes {
		b.Run(s.name, func(b *testing.B) {
			_, bd, arena := batchBenchSetup(b, s)
			batch := Batch{Words: arena, Stride: s.n, Count: batchWords}
			b.SetBytes(int64(len(arena)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bd.DecodeAll(batch, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Clean != batchWords {
					b.Fatalf("%d clean words, want %d", res.Clean, batchWords)
				}
			}
		})
	}
}

func BenchmarkBatchDecodeSparse(b *testing.B) {
	for _, s := range batchBenchShapes {
		b.Run(s.name, func(b *testing.B) {
			_, bd, arena := batchBenchSetup(b, s)
			rng := rand.New(rand.NewSource(83))
			// 1 dirty word in 16: s.errs random errors each. DecodeAll
			// corrects in place, so the flips are re-applied inside the
			// timed loop (a handful of XORs, noise next to the decode).
			type flip struct {
				pos int
				val gf.Elem
			}
			var flips []flip
			for w := 0; w < batchWords; w += 16 {
				for _, p := range rng.Perm(s.n)[:s.errs:s.errs] {
					flips = append(flips, flip{w*s.n + p, gf.Elem(1 + rng.Intn(255))})
				}
			}
			batch := Batch{Words: arena, Stride: s.n, Count: batchWords}
			b.SetBytes(int64(len(arena)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range flips {
					arena[f.pos] ^= f.val
				}
				res, err := bd.DecodeAll(batch, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Corrected != batchWords/16 {
					b.Fatalf("%d corrected words, want %d", res.Corrected, batchWords/16)
				}
			}
		})
	}
}

func BenchmarkBatchDecodeErasures(b *testing.B) {
	for _, s := range batchBenchShapes {
		b.Run(s.name, func(b *testing.B) {
			_, bd, arena := batchBenchSetup(b, s)
			rng := rand.New(rand.NewSource(84))
			erasures := make([][]int, batchWords)
			type flip struct {
				pos int
				val gf.Elem
			}
			var flips []flip
			for w := 0; w < batchWords; w++ {
				positions := rng.Perm(s.n)[:s.erasures:s.erasures]
				erasures[w] = positions
				for _, p := range positions {
					flips = append(flips, flip{w*s.n + p, gf.Elem(1 + rng.Intn(255))})
				}
			}
			batch := Batch{Words: arena, Stride: s.n, Count: batchWords}
			// One untimed pass warms the erasure-set cache: the timed
			// loop then measures the steady-state scrub pass, where the
			// located sets repeat and per-word work is evaluation only.
			if _, err := bd.DecodeAll(batch, erasures); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(arena)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range flips {
					arena[f.pos] ^= f.val
				}
				res, err := bd.DecodeAll(batch, erasures)
				if err != nil {
					b.Fatal(err)
				}
				if res.Corrected != batchWords {
					b.Fatalf("%d corrected words, want %d", res.Corrected, batchWords)
				}
			}
		})
	}
}

// BenchmarkBatchDecodeErasuresShared is the stuck-column page model:
// every word of the arena carries the *same* erasure set (one located
// column list shared arena-wide), so the erasure-set cache resolves
// each word with one pointer compare and the per-word cost is pure
// evaluation.
func BenchmarkBatchDecodeErasuresShared(b *testing.B) {
	for _, s := range batchBenchShapes {
		b.Run(s.name, func(b *testing.B) {
			_, bd, arena := batchBenchSetup(b, s)
			rng := rand.New(rand.NewSource(85))
			shared := rng.Perm(s.n)[:s.erasures:s.erasures]
			erasures := make([][]int, batchWords)
			type flip struct {
				pos int
				val gf.Elem
			}
			var flips []flip
			for w := 0; w < batchWords; w++ {
				erasures[w] = shared
				for _, p := range shared {
					flips = append(flips, flip{w*s.n + p, gf.Elem(1 + rng.Intn(255))})
				}
			}
			batch := Batch{Words: arena, Stride: s.n, Count: batchWords}
			if _, err := bd.DecodeAll(batch, erasures); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(arena)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range flips {
					arena[f.pos] ^= f.val
				}
				res, err := bd.DecodeAll(batch, erasures)
				if err != nil {
					b.Fatal(err)
				}
				if res.Corrected != batchWords {
					b.Fatalf("%d corrected words, want %d", res.Corrected, batchWords)
				}
			}
		})
	}
}

// BenchmarkBatchDecodeParallel decodes a large erasure-heavy arena
// with SetWorkers(GOMAXPROCS), so `-cpu 1,4` compares the serial path
// against four contiguous shards on the same arena (results are
// bit-identical either way; the equivalence tests enforce it).
func BenchmarkBatchDecodeParallel(b *testing.B) {
	const words = 256
	s := benchShape{name: "RS255_223", n: 255, k: 223, errs: 16, erasures: 32}
	b.Run(s.name, func(b *testing.B) {
		c := MustNew(f8, s.n, s.k)
		rng := rand.New(rand.NewSource(86))
		arena := make([]gf.Elem, words*s.n)
		for w := 0; w < words; w++ {
			if err := c.EncodeTo(arena[w*s.n:(w+1)*s.n], randData(rng, c)); err != nil {
				b.Fatal(err)
			}
		}
		shared := rng.Perm(s.n)[:s.erasures:s.erasures]
		erasures := make([][]int, words)
		type flip struct {
			pos int
			val gf.Elem
		}
		var flips []flip
		for w := 0; w < words; w++ {
			erasures[w] = shared
			for _, p := range shared {
				flips = append(flips, flip{w*s.n + p, gf.Elem(1 + rng.Intn(255))})
			}
		}
		bd := c.NewBatchDecoder().SetWorkers(runtime.GOMAXPROCS(0))
		batch := Batch{Words: arena, Stride: s.n, Count: words}
		if _, err := bd.DecodeAll(batch, erasures); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(arena)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range flips {
				arena[f.pos] ^= f.val
			}
			res, err := bd.DecodeAll(batch, erasures)
			if err != nil {
				b.Fatal(err)
			}
			if res.Corrected != words {
				b.Fatalf("%d corrected words, want %d", res.Corrected, words)
			}
		}
	})
}

// BenchmarkBatchDecodeStream scrubs a large arena through DecodeStream
// in fixed-size chunks — the store-larger-than-memory pattern, with
// the chunk sub-arena and erasure set reused across the whole stream.
func BenchmarkBatchDecodeStream(b *testing.B) {
	const (
		words = 256
		chunk = 32
	)
	s := benchShape{name: "RS255_223", n: 255, k: 223, errs: 16, erasures: 32}
	b.Run(s.name, func(b *testing.B) {
		c := MustNew(f8, s.n, s.k)
		rng := rand.New(rand.NewSource(87))
		arena := make([]gf.Elem, words*s.n)
		for w := 0; w < words; w++ {
			if err := c.EncodeTo(arena[w*s.n:(w+1)*s.n], randData(rng, c)); err != nil {
				b.Fatal(err)
			}
		}
		shared := rng.Perm(s.n)[:s.erasures:s.erasures]
		erasures := make([][]int, chunk)
		for w := range erasures {
			erasures[w] = shared
		}
		type flip struct {
			pos int
			val gf.Elem
		}
		var flips []flip
		for w := 0; w < words; w++ {
			for _, p := range shared {
				flips = append(flips, flip{w*s.n + p, gf.Elem(1 + rng.Intn(255))})
			}
		}
		bd := c.NewBatchDecoder()
		next := 0
		fill := func() (Batch, [][]int, error) {
			if next >= words {
				return Batch{}, nil, nil
			}
			cnt := chunk
			if words-next < cnt {
				cnt = words - next
			}
			bt := Batch{Words: arena[next*s.n : (next+cnt)*s.n], Stride: s.n, Count: cnt}
			next += cnt
			return bt, erasures[:cnt], nil
		}
		run := func() StreamStats {
			next = 0
			st, err := bd.DecodeStream(fill, nil)
			if err != nil {
				b.Fatal(err)
			}
			return st
		}
		run() // warm the erasure-set cache
		b.SetBytes(int64(len(arena)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range flips {
				arena[f.pos] ^= f.val
			}
			if st := run(); st.Corrected != words {
				b.Fatalf("%d corrected words, want %d", st.Corrected, words)
			}
		}
	})
}
