package rs_test

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/rs"
)

// ExampleCode_Decode walks the full errors-and-erasures cycle on the
// paper's RS(18,16) code.
func ExampleCode_Decode() {
	field := gf.MustField(8)
	code := rs.MustNew(field, 18, 16)

	data := make([]gf.Elem, 16)
	for i := range data {
		data[i] = gf.Elem(i)
	}
	word, _ := code.Encode(data)

	// An SEU flips bits in one symbol (a random error)...
	word[4] ^= 0x21
	res, _ := code.Decode(word, nil)
	fmt.Println("corrected symbols:", res.Corrections, "flag:", res.Flag)

	// ...while located permanent faults are erasures: RS(18,16)
	// handles two of them, twice its random-error capability.
	word2, _ := code.Encode(data)
	word2[0], word2[17] = 0xAA, 0xBB
	res2, _ := code.Decode(word2, []int{0, 17})
	fmt.Println("recovered from erasures:", res2.Corrections == 2)

	// Output:
	// corrected symbols: 1 flag: true
	// recovered from erasures: true
}

// ExampleCode_DecodeEuclidean shows the independent Sugiyama decoder
// agreeing with the Berlekamp-Massey path.
func ExampleCode_DecodeEuclidean() {
	field := gf.MustField(8)
	code := rs.MustNew(field, 36, 16)

	data := make([]gf.Elem, 16)
	word, _ := code.Encode(data)
	for _, p := range []int{1, 5, 9, 20, 33} {
		word[p] ^= 0x7F
	}
	bm, _ := code.Decode(word, nil)
	eu, _ := code.DecodeEuclidean(word, nil)
	same := true
	for i := range bm.Codeword {
		if bm.Codeword[i] != eu.Codeword[i] {
			same = false
		}
	}
	fmt.Println("decoders agree:", same, "corrections:", eu.Corrections)

	// Output:
	// decoders agree: true corrections: 5
}
