package rs

import (
	"fmt"

	"repro/internal/gf"
)

// This file implements the batch (arena) decode layer: a syndrome-first
// throughput path for scrub-scale workloads that decode every stored
// word each pass. The overwhelmingly common case in a scrub pass is a
// word with no errors at all, and for those the only work a decoder
// truly owes is the syndrome check — so DecodeAll screens the whole
// arena with a packed syndrome fold and touches the per-word
// Berlekamp-Massey/Chien machinery only for words whose syndromes come
// back nonzero (or that carry erasures, whose validation order the
// per-word pipeline owns).
//
// The syndrome screen runs on a precomputed contribution table, the
// CRC slicing-by-8 trick transplanted to GF(2^m): the contribution of
// symbol value s at codeword position i to syndrome j is
// s * alpha^((fcr+j)*(n-1-i)), a pure function of (i, s, j), so the
// code precomputes for every (i, s) the whole d-vector of syndrome
// contributions packed eight 8-bit symbols per uint64 (the table only
// exists for fields with multiplication tables, i.e. m <= 8, so every
// contribution fits a byte lane, and XOR never carries across lanes).
// Folding one word's syndromes is then n table-row fetches XORed into
// ceil(d/8) uint64 accumulators — 4 wide XORs per symbol for
// RS(255,223) instead of 32 serially dependent multiplication-table
// lookups — and symbol validation rides along as a bitwise OR of the
// word. The rows for one (i, *) are independent across positions, so
// the loads pipeline instead of chaining like Horner evaluation does.

// maxBatchTableBytes caps the packed syndrome-contribution table. The
// table costs n * 2^m * ceil(d/8) * 8 bytes — 2.1 MiB for RS(255,223),
// 36 KiB for RS(18,16) — and codes whose table would exceed the cap
// (or whose field has no multiplication table) fall back to the
// per-word pipeline for every arena word, keeping DecodeAll correct
// for every code the package supports.
const maxBatchTableBytes = 8 << 20

// batchTable lazily carries the packed syndrome-contribution rows of
// one Code (shared by every BatchDecoder of that code).
type batchTable struct {
	tab []uint64 // nil when the fast path is unavailable
	pw  int      // packed uint64 words per row, ceil(d/8)
}

// batchSyndromeTable builds (once) and returns the packed table.
func (c *Code) batchSyndromeTable() *batchTable {
	c.batchOnce.Do(func() {
		f := c.f
		d := c.n - c.k
		pw := (d + 7) / 8
		if f.MulRow(1) == nil {
			return // no multiplication table: stay on the per-word pipeline
		}
		if bytes := c.n * f.Size() * pw * 8; bytes > maxBatchTableBytes {
			return
		}
		tab := make([]uint64, c.n*f.Size()*pw)
		for i := 0; i < c.n; i++ {
			p := c.n - 1 - i
			base := i * f.Size() * pw
			for j := 0; j < d; j++ {
				mult := f.Exp((c.fcr + j) * p)
				row := f.MulRow(mult)
				word, shift := j>>3, uint(8*(j&7))
				for s := 0; s < f.Size(); s++ {
					tab[base+s*pw+word] |= uint64(row[s]) << shift
				}
			}
		}
		c.batchTab = batchTable{tab: tab, pw: pw}
	})
	return &c.batchTab
}

// Batch describes a contiguous word arena: Count codewords of n
// symbols each, word w occupying Words[w*Stride : w*Stride+n]. A
// Stride larger than n leaves per-word headroom (page metadata,
// alignment padding) that decoding never reads or writes; Stride == n
// is the dense layout.
type Batch struct {
	Words  []gf.Elem
	Stride int
	Count  int
}

// WordResult reports one arena word's decode outcome. Err is nil on
// success (the word was corrected in place; Corrections symbols were
// changed, so the paper's arbiter flag is Corrections > 0) and a
// wrapped ErrUncorrectable — or a validation error, exactly as
// Decoder.Decode classifies them — on failure, in which case the word
// is left unmodified.
type WordResult struct {
	Corrections int
	Err         error
}

// BatchResult aggregates one DecodeAll call. Words and the counters
// alias the BatchDecoder workspace and are valid only until the next
// call on the same BatchDecoder.
type BatchResult struct {
	// Words holds one entry per arena word, in arena order.
	Words []WordResult
	// Clean counts words decoded with zero corrections (most of them
	// never leaving the syndrome screen), Corrected words repaired in
	// place, Failed words whose Err is non-nil.
	Clean, Corrected, Failed int
}

// BatchDecoder is a reusable workspace for decoding whole word arenas.
// Like Decoder it is NOT safe for concurrent use (hold one per
// goroutine) and its BatchResult is valid only until the next call.
// The packed syndrome table it screens with lives on the Code and is
// shared by every BatchDecoder of that code.
type BatchDecoder struct {
	c   *Code
	dec *Decoder
	acc []uint64 // generic-width syndrome accumulator
	res BatchResult
}

// NewBatchDecoder returns a fresh arena-decoding workspace for c,
// building the code's packed syndrome table on first use.
func (c *Code) NewBatchDecoder() *BatchDecoder {
	bt := c.batchSyndromeTable()
	return &BatchDecoder{
		c:   c,
		dec: c.NewDecoder(),
		acc: make([]uint64, bt.pw),
	}
}

// Code returns the code this workspace decodes.
func (bd *BatchDecoder) Code() *Code { return bd.c }

// DecodeAll decodes every word of the arena, correcting successful
// words in place (a failed word is left exactly as received, like a
// scrub controller that has nothing better to write back). erasures is
// nil, or holds one erasure-position list per word (entries may be nil
// or shared between words); each word's outcome — corrected symbols,
// acceptance, error classification — is identical to what
// Decoder.Decode would have produced for that word and its list.
//
// DecodeAll screens erasure-free words with the packed syndrome fold
// and only runs the per-word pipeline for the words that need it, so a
// mostly-clean arena decodes at syndrome-check speed. The returned
// BatchResult aliases the workspace; the steady state of repeated
// same-shape calls performs no heap allocation (word-level decode
// failures allocate their error values).
func (bd *BatchDecoder) DecodeAll(b Batch, erasures [][]int) (*BatchResult, error) {
	c := bd.c
	n := c.n
	switch {
	case b.Count < 0:
		return nil, fmt.Errorf("rs: negative batch count %d", b.Count)
	case b.Stride < n:
		return nil, fmt.Errorf("rs: batch stride %d below codeword length n=%d", b.Stride, n)
	case b.Count > 0 && len(b.Words) < (b.Count-1)*b.Stride+n:
		return nil, fmt.Errorf("rs: batch arena has %d symbols, want at least %d for %d words of stride %d",
			len(b.Words), (b.Count-1)*b.Stride+n, b.Count, b.Stride)
	case erasures != nil && len(erasures) != b.Count:
		return nil, fmt.Errorf("rs: batch has %d erasure lists, want %d (or nil)", len(erasures), b.Count)
	}

	res := &bd.res
	res.Words = res.Words[:0]
	res.Clean, res.Corrected, res.Failed = 0, 0, 0
	bt := c.batchSyndromeTable()

	for w := 0; w < b.Count; w++ {
		word := b.Words[w*b.Stride : w*b.Stride+n : w*b.Stride+n]
		var ers []int
		if erasures != nil {
			ers = erasures[w]
		}
		if len(ers) == 0 && bt.tab != nil && bd.screenClean(bt, word) {
			res.Words = append(res.Words, WordResult{})
			res.Clean++
			continue
		}
		dres, err := bd.dec.decode(word, ers, false)
		if err != nil {
			res.Words = append(res.Words, WordResult{Err: err})
			res.Failed++
			continue
		}
		copy(word, dres.Codeword)
		res.Words = append(res.Words, WordResult{Corrections: dres.Corrections})
		if dres.Corrections > 0 {
			res.Corrected++
		} else {
			res.Clean++
		}
	}
	return res, nil
}

// screenClean reports whether the word is a valid codeword, by folding
// its packed syndrome contributions and OR-validating its symbols in
// one pass. A false return means "needs the per-word pipeline": dirty
// syndromes or an out-of-range symbol (the table is indexed with
// masked symbols, so an invalid word folds garbage — harmlessly,
// because the OR check routes it to the per-word path, which rejects
// it with the exact Decoder.Decode error).
func (bd *BatchDecoder) screenClean(bt *batchTable, word []gf.Elem) bool {
	size := bd.c.f.Size()
	mask := gf.Elem(size - 1)
	var or gf.Elem
	switch bt.pw {
	case 1: // d <= 8: RS(18,16), RS(20,16)
		var a0 uint64
		tab, base := bt.tab, 0
		for _, s := range word {
			or |= s
			a0 ^= tab[base+int(s&mask)]
			base += size
		}
		if a0 != 0 {
			return false
		}
	case 4: // 25 <= d <= 32: RS(255,223)
		var a0, a1, a2, a3 uint64
		tab, base := bt.tab, 0
		for _, s := range word {
			or |= s
			off := base + int(s&mask)*4
			row := tab[off : off+4 : off+4]
			a0 ^= row[0]
			a1 ^= row[1]
			a2 ^= row[2]
			a3 ^= row[3]
			base += size * 4
		}
		if a0|a1|a2|a3 != 0 {
			return false
		}
	default:
		acc := bd.acc[:bt.pw]
		for q := range acc {
			acc[q] = 0
		}
		tab, pw, base := bt.tab, bt.pw, 0
		for _, s := range word {
			or |= s
			row := tab[base+int(s&mask)*pw:]
			for q := range acc {
				acc[q] ^= row[q]
			}
			base += size * pw
		}
		for _, a := range acc {
			if a != 0 {
				return false
			}
		}
	}
	return int(or) < size
}
