package rs

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/gf"
)

// This file implements the batch (arena) decode layer: a syndrome-first
// throughput path for scrub-scale workloads that decode every stored
// word each pass. The overwhelmingly common case in a scrub pass is a
// word with no errors at all, and for those the only work a decoder
// truly owes is the syndrome check — so DecodeAll screens the whole
// arena with a packed syndrome fold and touches the per-word
// Berlekamp-Massey/Chien machinery only for words whose syndromes come
// back nonzero (or that carry erasures, whose validation order the
// per-word pipeline owns).
//
// The syndrome screen runs on a precomputed contribution table, the
// CRC slicing-by-8 trick transplanted to GF(2^m): the contribution of
// symbol value s at codeword position i to syndrome j is
// s * alpha^((fcr+j)*(n-1-i)), a pure function of (i, s, j), so the
// code precomputes for every (i, s) the whole d-vector of syndrome
// contributions packed eight 8-bit symbols per uint64 (the table only
// exists for fields with multiplication tables, i.e. m <= 8, so every
// contribution fits a byte lane, and XOR never carries across lanes).
// Folding one word's syndromes is then n table-row fetches XORed into
// ceil(d/8) uint64 accumulators — 4 wide XORs per symbol for
// RS(255,223) instead of 32 serially dependent multiplication-table
// lookups — and symbol validation rides along as a bitwise OR of the
// word. The rows for one (i, *) are independent across positions, so
// the loads pipeline instead of chaining like Horner evaluation does.

// maxBatchTableBytes caps the packed syndrome-contribution table. The
// table costs n * 2^m * ceil(d/8) * 8 bytes — 2.1 MiB for RS(255,223),
// 36 KiB for RS(18,16) — and codes whose table would exceed the cap
// (or whose field has no multiplication table) fall back to the
// per-word pipeline for every arena word, keeping DecodeAll correct
// for every code the package supports.
const maxBatchTableBytes = 8 << 20

// batchTable lazily carries the packed syndrome-contribution rows of
// one Code (shared by every BatchDecoder of that code).
type batchTable struct {
	tab []uint64 // nil when the fast path is unavailable
	pw  int      // packed uint64 words per row, ceil(d/8)
}

// batchSyndromeTable builds (once) and returns the packed table.
func (c *Code) batchSyndromeTable() *batchTable {
	c.batchOnce.Do(func() {
		f := c.f
		d := c.n - c.k
		pw := (d + 7) / 8
		if f.MulRow(1) == nil {
			return // no multiplication table: stay on the per-word pipeline
		}
		if bytes := c.n * f.Size() * pw * 8; bytes > maxBatchTableBytes {
			return
		}
		tab := make([]uint64, c.n*f.Size()*pw)
		for i := 0; i < c.n; i++ {
			p := c.n - 1 - i
			base := i * f.Size() * pw
			for j := 0; j < d; j++ {
				mult := f.Exp((c.fcr + j) * p)
				row := f.MulRow(mult)
				word, shift := j>>3, uint(8*(j&7))
				for s := 0; s < f.Size(); s++ {
					tab[base+s*pw+word] |= uint64(row[s]) << shift
				}
			}
		}
		c.batchTab = batchTable{tab: tab, pw: pw}
	})
	return &c.batchTab
}

// Batch describes a contiguous word arena: Count codewords of n
// symbols each, word w occupying Words[w*Stride : w*Stride+n]. A
// Stride larger than n leaves per-word headroom (page metadata,
// alignment padding) that decoding never reads or writes; Stride == n
// is the dense layout.
//
// List-sharing contract: the erasure lists passed alongside a Batch
// (to DecodeAll or through DecodeStream) may be nil, distinct, or the
// very same slice shared by many words — sharing is encouraged, it is
// what the erasure-set cache is built for. The lists must not be
// mutated while the call runs, and a caller that reuses a list's
// backing array across calls may change its *contents* freely between
// calls: the cache keys on content, never on pointer identity across
// calls.
type Batch struct {
	Words  []gf.Elem
	Stride int
	Count  int
}

// WordResult reports one arena word's decode outcome. Err is nil on
// success (the word was corrected in place; Corrections symbols were
// changed, so the paper's arbiter flag is Corrections > 0) and a
// wrapped ErrUncorrectable — or a validation error, exactly as
// Decoder.Decode classifies them — on failure, in which case the word
// is left unmodified.
type WordResult struct {
	Corrections int
	Err         error
}

// BatchResult aggregates one DecodeAll call. Words and the counters
// alias the BatchDecoder workspace and are valid only until the next
// call on the same BatchDecoder.
type BatchResult struct {
	// Words holds one entry per arena word, in arena order.
	Words []WordResult
	// Clean counts words decoded with zero corrections (most of them
	// never leaving the syndrome screen), Corrected words repaired in
	// place, Failed words whose Err is non-nil.
	Clean, Corrected, Failed int
}

// batchLane is one worker's private slice of the BatchDecoder
// workspace: a Decoder, the packed-syndrome accumulator the screen
// writes, an erasure-set cache, and the shard tallies the join sums.
type batchLane struct {
	dec   *Decoder
	acc   []uint64 // generic-width syndrome accumulator
	cache erasureCache

	clean, corrected, failed int
}

func newBatchLane(c *Code, pw int) *batchLane {
	return &batchLane{
		dec:   c.NewDecoder(),
		acc:   make([]uint64, pw),
		cache: newErasureCache(c),
	}
}

// BatchDecoder is a reusable workspace for decoding whole word arenas.
// Like Decoder it is NOT safe for concurrent use (hold one per
// goroutine — its own SetWorkers goroutines are internal and scoped to
// a call) and its BatchResult is valid only until the next call. The
// packed syndrome table it screens with lives on the Code and is
// shared by every BatchDecoder of that code.
type BatchDecoder struct {
	c       *Code
	workers int
	lanes   []*batchLane
	res     BatchResult

	// Parallel decode plumbing (nil/zero until SetWorkers(>1)): shards
	// are handed to persistent worker goroutines over work, so a
	// parallel DecodeAll costs channel handoffs, not goroutine spawns,
	// and allocates nothing. Workers hold only the channel — never the
	// BatchDecoder — so the finalizer installed by SetWorkers can close
	// the channel and wind them down once the decoder is unreachable.
	work    chan batchShard
	wg      sync.WaitGroup
	spawned int
}

// batchShard is one contiguous word range of a parallel DecodeAll,
// handed to a persistent worker by value over the work channel.
type batchShard struct {
	lane   *batchLane
	bt     *batchTable
	b      Batch
	ers    [][]int
	lo, hi int
	out    []WordResult
	wg     *sync.WaitGroup
}

// batchWorker drains shards until the work channel closes. It is a
// free function on purpose: holding bd here would keep the decoder
// reachable forever and defeat its finalizer.
func batchWorker(work <-chan batchShard) {
	for sh := range work {
		sh.lane.decodeRange(sh.bt, sh.b, sh.ers, sh.lo, sh.hi, sh.out)
		sh.wg.Done()
	}
}

// NewBatchDecoder returns a fresh arena-decoding workspace for c,
// building the code's packed syndrome table on first use.
func (c *Code) NewBatchDecoder() *BatchDecoder {
	bt := c.batchSyndromeTable()
	return &BatchDecoder{
		c:       c,
		workers: 1,
		lanes:   []*batchLane{newBatchLane(c, bt.pw)},
	}
}

// Code returns the code this workspace decodes.
func (bd *BatchDecoder) Code() *Code { return bd.c }

// SetWorkers sets how many goroutines DecodeAll (and DecodeStream,
// which decodes through it) may use per arena. Words are disjoint and
// corrected in place, so the arena shards into contiguous word ranges
// — one per worker, the internal/campaign discipline — and the
// results are bit-identical for every worker count. n <= 1 keeps the
// serial path, which spawns no goroutines and preserves the
// zero-allocation steady state; each extra worker owns a private
// Decoder, screen accumulator and erasure-set cache. SetWorkers
// returns bd for chaining and must not be called concurrently with
// decoding.
func (bd *BatchDecoder) SetWorkers(n int) *BatchDecoder {
	if n < 1 {
		n = 1
	}
	bd.workers = n
	bt := bd.c.batchSyndromeTable()
	for len(bd.lanes) < n {
		bd.lanes = append(bd.lanes, newBatchLane(bd.c, bt.pw))
	}
	if n > 1 && bd.work == nil {
		bd.work = make(chan batchShard)
		// The workers outlive every call but not the decoder: they see
		// only the channel, so once bd is unreachable the finalizer
		// closes it and the pool exits.
		runtime.SetFinalizer(bd, func(bd *BatchDecoder) { close(bd.work) })
	}
	for bd.spawned < n-1 {
		go batchWorker(bd.work)
		bd.spawned++
	}
	return bd
}

// Workers returns the configured worker count.
func (bd *BatchDecoder) Workers() int { return bd.workers }

// DecodeAll decodes every word of the arena, correcting successful
// words in place (a failed word is left exactly as received, like a
// scrub controller that has nothing better to write back). erasures is
// nil, or holds one erasure-position list per word (entries may be nil
// or shared between words — see the list-sharing contract on Batch);
// each word's outcome — corrected symbols, acceptance, error
// classification — is identical to what Decoder.Decode would have
// produced for that word and its list, for any worker count.
//
// DecodeAll screens every word with the packed syndrome fold; clean
// words never leave the screen, and dirty words hand the folded
// syndromes straight to the per-word pipeline instead of recomputing
// them (the screen's byte lanes *are* the syndromes). Words with
// erasures additionally resolve their position set through a small
// per-worker cache of erasure-locator setups, so an arena sharing one
// located-column set pays the polynomial construction once. The
// returned BatchResult aliases the workspace; the steady state of
// repeated same-shape serial calls performs no heap allocation
// (word-level decode failures allocate their error values, built once
// per cached erasure set).
func (bd *BatchDecoder) DecodeAll(b Batch, erasures [][]int) (*BatchResult, error) {
	c := bd.c
	n := c.n
	switch {
	case b.Count < 0:
		return nil, fmt.Errorf("rs: negative batch count %d", b.Count)
	case b.Stride < n:
		return nil, fmt.Errorf("rs: batch stride %d below codeword length n=%d", b.Stride, n)
	case b.Count > 0 && len(b.Words) < (b.Count-1)*b.Stride+n:
		return nil, fmt.Errorf("rs: batch arena has %d symbols, want at least %d for %d words of stride %d",
			len(b.Words), (b.Count-1)*b.Stride+n, b.Count, b.Stride)
	case erasures != nil && len(erasures) != b.Count:
		return nil, fmt.Errorf("rs: batch has %d erasure lists, want %d (or nil)", len(erasures), b.Count)
	}

	res := &bd.res
	if cap(res.Words) < b.Count {
		res.Words = make([]WordResult, b.Count)
	} else {
		res.Words = res.Words[:b.Count]
	}
	res.Clean, res.Corrected, res.Failed = 0, 0, 0
	bt := c.batchSyndromeTable()

	nw := bd.workers
	if nw > b.Count {
		nw = b.Count
	}
	if nw <= 1 {
		lane := bd.lanes[0]
		lane.decodeRange(bt, b, erasures, 0, b.Count, res.Words)
		res.Clean, res.Corrected, res.Failed = lane.clean, lane.corrected, lane.failed
		return res, nil
	}
	// Contiguous shards, one per worker: shards 1..nw-1 go to the
	// persistent pool, shard 0 decodes on the calling goroutine.
	bd.wg.Add(nw - 1)
	for i := 1; i < nw; i++ {
		bd.work <- batchShard{
			lane: bd.lanes[i],
			bt:   bt,
			b:    b,
			ers:  erasures,
			lo:   i * b.Count / nw,
			hi:   (i + 1) * b.Count / nw,
			out:  res.Words,
			wg:   &bd.wg,
		}
	}
	bd.lanes[0].decodeRange(bt, b, erasures, 0, b.Count/nw, res.Words)
	bd.wg.Wait()
	for i := 0; i < nw; i++ {
		res.Clean += bd.lanes[i].clean
		res.Corrected += bd.lanes[i].corrected
		res.Failed += bd.lanes[i].failed
	}
	return res, nil
}

// decodeRange decodes the contiguous word range [lo,hi) into out,
// leaving the shard tallies on the lane for the caller to sum.
func (l *batchLane) decodeRange(bt *batchTable, b Batch, erasures [][]int, lo, hi int, out []WordResult) {
	l.clean, l.corrected, l.failed = 0, 0, 0
	l.cache.resetMemo()
	n := l.dec.c.n
	for w := lo; w < hi; w++ {
		word := b.Words[w*b.Stride : w*b.Stride+n : w*b.Stride+n]
		var ers []int
		if erasures != nil {
			ers = erasures[w]
		}
		r := l.decodeWord(bt, word, ers)
		out[w] = r
		switch {
		case r.Err != nil:
			l.failed++
		case r.Corrections > 0:
			l.corrected++
		default:
			l.clean++
		}
	}
}

// decodeWord decodes one arena word, correcting it in place on
// success. The routing preserves Decoder.Decode's classification
// order exactly: invalid symbols (caught by the screen's OR check)
// are reported before erasure-list errors, which precede any
// syndrome-dependent outcome.
func (l *batchLane) decodeWord(bt *batchTable, word []gf.Elem, ers []int) WordResult {
	if bt.tab == nil {
		// No packed table (m > 8 or the table outgrew its cap): the
		// per-word pipeline owns everything.
		return l.fullDecode(word, ers)
	}
	dirty, valid := l.screen(bt, word)
	if !valid {
		// Out-of-range symbol: route the whole word to the per-word
		// pipeline, which rejects it with the exact Decoder.Decode
		// error before looking at the erasure list.
		return l.fullDecode(word, ers)
	}
	var ent *erasureEntry
	if len(ers) > 0 {
		ent = l.cache.get(ers)
		if ent.err != nil {
			return WordResult{Err: ent.err}
		}
	}
	if !dirty {
		return WordResult{}
	}
	// Syndrome handoff: the screen's byte lanes are the word's packed
	// syndromes; unpack them into the decoder register so the pipeline
	// never recomputes the O(n*d) Horner pass it just paid for.
	syn := l.dec.syn
	for j := range syn {
		syn[j] = gf.Elem(l.acc[j>>3] >> (8 * (j & 7)) & 0xff)
	}
	dres, err := l.dec.decodeWithSyndromes(word, ent)
	if err != nil {
		return WordResult{Err: err}
	}
	copy(word, dres.Codeword)
	return WordResult{Corrections: dres.Corrections}
}

// fullDecode runs the unabridged per-word pipeline (validation,
// Horner syndromes and all) and applies the correction in place.
func (l *batchLane) fullDecode(word []gf.Elem, ers []int) WordResult {
	dres, err := l.dec.decode(word, ers, false)
	if err != nil {
		return WordResult{Err: err}
	}
	copy(word, dres.Codeword)
	return WordResult{Corrections: dres.Corrections}
}

// screen folds the word's packed syndrome contributions into the lane
// accumulator and OR-validates its symbols in one pass. dirty reports
// nonzero syndromes (l.acc then holds the packed lanes, ready to
// unpack); valid reports every symbol in field range. An invalid word
// folds garbage through the masked table index — harmlessly, because
// the caller routes !valid words to the per-word path, which rejects
// them with the exact Decoder.Decode error.
func (l *batchLane) screen(bt *batchTable, word []gf.Elem) (dirty, valid bool) {
	size := l.dec.c.f.Size()
	mask := gf.Elem(size - 1)
	var or gf.Elem
	switch bt.pw {
	case 1: // d <= 8: RS(18,16), RS(20,16)
		var a0 uint64
		tab, base := bt.tab, 0
		for _, s := range word {
			or |= s
			a0 ^= tab[base+int(s&mask)]
			base += size
		}
		l.acc[0] = a0
		dirty = a0 != 0
	case 4: // 25 <= d <= 32: RS(255,223)
		var a0, a1, a2, a3 uint64
		tab, base := bt.tab, 0
		for _, s := range word {
			or |= s
			off := base + int(s&mask)*4
			row := tab[off : off+4 : off+4]
			a0 ^= row[0]
			a1 ^= row[1]
			a2 ^= row[2]
			a3 ^= row[3]
			base += size * 4
		}
		l.acc[0], l.acc[1], l.acc[2], l.acc[3] = a0, a1, a2, a3
		dirty = a0|a1|a2|a3 != 0
	default:
		acc := l.acc[:bt.pw]
		for q := range acc {
			acc[q] = 0
		}
		tab, pw, base := bt.tab, bt.pw, 0
		for _, s := range word {
			or |= s
			row := tab[base+int(s&mask)*pw:]
			for q := range acc {
				acc[q] ^= row[q]
			}
			base += size * pw
		}
		for _, a := range acc {
			if a != 0 {
				dirty = true
				break
			}
		}
	}
	return dirty, int(or) < size
}
