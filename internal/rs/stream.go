package rs

import "fmt"

// StreamStats totals one DecodeStream run across every chunk.
type StreamStats struct {
	// Chunks counts the fill calls that returned words.
	Chunks int
	// Words is the total word count decoded, and the per-word tallies
	// partition it exactly as BatchResult's do.
	Words     int
	Clean     int
	Corrected int
	Failed    int
}

// DecodeStream decodes an unbounded sequence of words chunk by chunk —
// the scrub-pass form of DecodeAll for stores larger than memory. fill
// is called before each chunk and returns the next sub-arena plus its
// erasure lists (nil, or one list per chunk word; the Batch
// list-sharing contract applies, and a set shared across chunks keeps
// the erasure-locator cache warm for the whole stream). A returned
// Count of 0 ends the stream; a fill error aborts it. The chunk is
// caller-owned and decoded in place — reusing one fixed-size sub-arena
// for every fill keeps the streaming steady state allocation-free —
// and emit (optional) observes each chunk right after it decodes:
// base is the stream-wide index of the chunk's first word, and res is
// valid only until the next chunk. A non-nil emit error aborts the
// stream.
//
// Chunks decode through DecodeAll, so per-word outcomes are identical
// to Decoder.Decode and a SetWorkers configuration parallelizes each
// chunk; only chunk boundaries distinguish a streamed decode from one
// whole-arena call.
func (bd *BatchDecoder) DecodeStream(
	fill func() (Batch, [][]int, error),
	emit func(base int, b Batch, res *BatchResult) error,
) (StreamStats, error) {
	var st StreamStats
	if fill == nil {
		return st, fmt.Errorf("rs: DecodeStream needs a fill callback")
	}
	for {
		b, ers, err := fill()
		if err != nil {
			return st, fmt.Errorf("rs: stream fill after %d words: %w", st.Words, err)
		}
		if b.Count == 0 {
			return st, nil
		}
		res, err := bd.DecodeAll(b, ers)
		if err != nil {
			return st, err
		}
		if emit != nil {
			if err := emit(st.Words, b, res); err != nil {
				return st, fmt.Errorf("rs: stream emit at chunk %d: %w", st.Chunks, err)
			}
		}
		st.Chunks++
		st.Words += b.Count
		st.Clean += res.Clean
		st.Corrected += res.Corrected
		st.Failed += res.Failed
	}
}
