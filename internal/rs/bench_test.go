package rs

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// The per-kernel microbenchmarks below all run through the
// zero-allocation workspace API (EncodeTo, SyndromesInto,
// Decoder.Decode); the wrapper-path benchmarks live in rs_test.go.
// SetBytes counts one byte per codeword symbol so ns/op and MB/s track
// the same kernels across code shapes.

type benchShape struct {
	name     string
	n, k     int
	errs     int // random errors injected for the decode benchmarks
	erasures int // erasures declared for the erasure benchmark
}

var benchShapes = []benchShape{
	{name: "RS1816", n: 18, k: 16, errs: 1, erasures: 2},
	{name: "RS3616", n: 36, k: 16, errs: 10, erasures: 20},
	{name: "RS255_223", n: 255, k: 223, errs: 16, erasures: 32},
}

func benchSetup(b *testing.B, s benchShape) (*Code, []gf.Elem, []gf.Elem) {
	b.Helper()
	c := MustNew(f8, s.n, s.k)
	rng := rand.New(rand.NewSource(77))
	data := randData(rng, c)
	cw, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	return c, data, cw
}

func BenchmarkEncode(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			c, data, _ := benchSetup(b, s)
			dst := make([]gf.Elem, s.n)
			b.SetBytes(int64(s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.EncodeTo(dst, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSyndromes(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			c, _, cw := benchSetup(b, s)
			cw[3] ^= 0x5a // a nonzero error keeps the syndromes honest
			syn := make([]gf.Elem, c.Redundancy())
			b.SetBytes(int64(s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.SyndromesInto(syn, cw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			c, _, cw := benchSetup(b, s)
			dec := c.NewDecoder()
			b.SetBytes(int64(s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(cw, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeErrors(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			c, _, cw := benchSetup(b, s)
			rng := rand.New(rand.NewSource(78))
			bad, _ := corrupt(rng, c, cw, s.errs)
			dec := c.NewDecoder()
			b.SetBytes(int64(s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(bad, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeErasures(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			c, _, cw := benchSetup(b, s)
			rng := rand.New(rand.NewSource(79))
			bad := append([]gf.Elem(nil), cw...)
			positions := rng.Perm(s.n)[:s.erasures:s.erasures]
			for _, p := range positions {
				bad[p] ^= gf.Elem(1 + rng.Intn(255))
			}
			dec := c.NewDecoder()
			b.SetBytes(int64(s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(bad, positions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSteadyStateZeroAllocs is the allocation-regression gate for the
// workspace API: encode, syndrome computation and decoding (clean,
// errors, erasures) must not allocate once the workspace exists.
func TestSteadyStateZeroAllocs(t *testing.T) {
	c := MustNew(f8, 36, 16)
	rng := rand.New(rand.NewSource(80))
	data := randData(rng, c)
	cw, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := corrupt(rng, c, cw, c.T())
	erased := append([]gf.Elem(nil), cw...)
	positions := rng.Perm(c.N())[:c.Redundancy():c.Redundancy()]
	for _, p := range positions {
		erased[p] ^= gf.Elem(1 + rng.Intn(255))
	}

	dst := make([]gf.Elem, c.N())
	syn := make([]gf.Elem, c.Redundancy())
	dec := c.NewDecoder()
	// Warm the paths once before measuring.
	if err := c.EncodeTo(dst, data); err != nil {
		t.Fatal(err)
	}
	if err := c.SyndromesInto(syn, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(bad, nil); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		fn   func()
	}{
		{"EncodeTo", func() {
			if err := c.EncodeTo(dst, data); err != nil {
				t.Fatal(err)
			}
		}},
		{"SyndromesInto", func() {
			if err := c.SyndromesInto(syn, bad); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeClean", func() {
			if _, err := dec.Decode(cw, nil); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeErrors", func() {
			if _, err := dec.Decode(bad, nil); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeErasures", func() {
			if _, err := dec.Decode(erased, positions); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, cse := range cases {
		if allocs := testing.AllocsPerRun(100, cse.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", cse.name, allocs)
		}
	}
}

// TestDecoderMatchesWrapper pins the workspace fast path to the
// allocating wrapper on random within- and beyond-capability inputs:
// identical accept/reject decisions and identical corrected words.
func TestDecoderMatchesWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, params := range [][2]int{{18, 16}, {36, 16}} {
		c := MustNew(f8, params[0], params[1])
		dec := c.NewDecoder()
		for trial := 0; trial < 1500; trial++ {
			data := randData(rng, c)
			cw, _ := c.Encode(data)
			count := rng.Intn(c.Redundancy() + 3)
			positions := rng.Perm(c.N())[:count:count]
			for _, p := range positions {
				cw[p] ^= gf.Elem(1 + rng.Intn(255))
			}
			var erasures []int
			if count > 0 && rng.Intn(2) == 0 {
				erasures = positions[:rng.Intn(count+1)]
			}
			want, wantErr := c.Decode(cw, erasures)
			got, gotErr := dec.Decode(cw, erasures)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("wrapper err=%v, workspace err=%v", wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if want.Corrections != got.Corrections || want.Flag != got.Flag {
				t.Fatalf("metadata mismatch: %d/%v vs %d/%v", want.Corrections, want.Flag, got.Corrections, got.Flag)
			}
			for i := range want.Codeword {
				if want.Codeword[i] != got.Codeword[i] {
					t.Fatalf("codeword mismatch at %d", i)
				}
			}
		}
	}
}
