package rs

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf"
)

var f8 = gf.MustField(8)

// paperCodes are the two codes evaluated by the DATE'05 paper.
func paperCodes(t *testing.T) (*Code, *Code) {
	t.Helper()
	rs1816, err := New(f8, 18, 16)
	if err != nil {
		t.Fatal(err)
	}
	rs3616, err := New(f8, 36, 16)
	if err != nil {
		t.Fatal(err)
	}
	return rs1816, rs3616
}

func randData(rng *rand.Rand, c *Code) []gf.Elem {
	data := make([]gf.Elem, c.K())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(c.Field().Size()))
	}
	return data
}

// corrupt flips random distinct symbols (guaranteed to change value)
// and returns the corrupted copy plus the positions changed.
func corrupt(rng *rand.Rand, c *Code, cw []gf.Elem, count int) ([]gf.Elem, []int) {
	out := make([]gf.Elem, len(cw))
	copy(out, cw)
	perm := rng.Perm(c.N())[:count]
	for _, p := range perm {
		delta := gf.Elem(1 + rng.Intn(c.Field().Size()-1))
		out[p] ^= delta
	}
	return out, perm
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, k int
		ok   bool
	}{
		{18, 16, true},
		{36, 16, true},
		{255, 223, true},
		{255, 1, true},
		{256, 200, false}, // exceeds 2^8-1
		{16, 16, false},   // k == n
		{10, 12, false},   // k > n
		{0, 0, false},
		{-1, -2, false},
	}
	for _, cse := range cases {
		_, err := New(f8, cse.n, cse.k)
		if (err == nil) != cse.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", cse.n, cse.k, err, cse.ok)
		}
	}
	if _, err := New(nil, 18, 16); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := NewWithFCR(f8, 18, 16, -1); err == nil {
		t.Error("negative fcr accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad params did not panic")
		}
	}()
	MustNew(f8, 10, 10)
}

func TestAccessors(t *testing.T) {
	c := MustNew(f8, 18, 16)
	if c.N() != 18 || c.K() != 16 || c.Redundancy() != 2 || c.T() != 1 || c.FCR() != 1 {
		t.Errorf("accessors wrong: n=%d k=%d red=%d t=%d fcr=%d", c.N(), c.K(), c.Redundancy(), c.T(), c.FCR())
	}
	if c.Field() != f8 {
		t.Error("Field() mismatch")
	}
	if got := c.Generator().Degree(); got != 2 {
		t.Errorf("generator degree = %d, want 2", got)
	}
	want := "RS(18,16) over GF(2^8, poly=0x11d)"
	if c.String() != want {
		t.Errorf("String() = %q, want %q", c.String(), want)
	}
}

func TestGeneratorRoots(t *testing.T) {
	for _, params := range [][3]int{{18, 16, 1}, {36, 16, 1}, {255, 223, 0}, {15, 9, 3}} {
		c, err := NewWithFCR(f8, params[0], params[1], params[2])
		if err != nil {
			t.Fatal(err)
		}
		g := c.Generator()
		ringEval := func(x gf.Elem) gf.Elem {
			var acc gf.Elem
			for i := g.Degree(); i >= 0; i-- {
				acc = f8.Mul(acc, x) ^ g.Coeff(i)
			}
			return acc
		}
		for j := 0; j < c.Redundancy(); j++ {
			root := f8.Exp(c.FCR() + j)
			if ringEval(root) != 0 {
				t.Errorf("RS(%d,%d,fcr=%d): alpha^%d is not a generator root", params[0], params[1], params[2], c.FCR()+j)
			}
		}
		if g.Lead() != 1 {
			t.Errorf("generator not monic")
		}
	}
}

func TestEncodeProducesCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, params := range [][2]int{{18, 16}, {36, 16}, {255, 223}, {7, 3}} {
		c := MustNew(f8, params[0], params[1])
		for i := 0; i < 50; i++ {
			data := randData(rng, c)
			cw, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !c.IsCodeword(cw) {
				t.Fatalf("RS(%d,%d): Encode output is not a codeword", params[0], params[1])
			}
			// Systematic: data must appear verbatim.
			for j, s := range data {
				if cw[j] != s {
					t.Fatalf("RS(%d,%d): not systematic at %d", params[0], params[1], j)
				}
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := MustNew(f8, 18, 16)
	if _, err := c.Encode(make([]gf.Elem, 15)); err == nil {
		t.Error("short dataword accepted")
	}
	if err := c.EncodeTo(make([]gf.Elem, 17), make([]gf.Elem, 16)); err == nil {
		t.Error("short destination accepted")
	}
	bad := make([]gf.Elem, 16)
	bad[3] = 300 // not a GF(256) element
	if _, err := c.Encode(bad); err == nil {
		t.Error("out-of-field symbol accepted")
	}
}

func TestSyndromesZeroIffCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := MustNew(f8, 18, 16)
	for i := 0; i < 200; i++ {
		data := randData(rng, c)
		cw, _ := c.Encode(data)
		syn, err := c.Syndromes(cw)
		if err != nil {
			t.Fatal(err)
		}
		if !syn.IsZero() {
			t.Fatal("codeword has nonzero syndromes")
		}
		bad, _ := corrupt(rng, c, cw, 1+rng.Intn(3))
		syn, _ = c.Syndromes(bad)
		if syn.IsZero() {
			t.Fatal("corrupted word has zero syndromes (distance violation)")
		}
	}
}

func TestDecodeCleanWord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := MustNew(f8, 18, 16)
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	res, err := c.Decode(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flag {
		t.Error("flag set on clean word")
	}
	if res.Corrections != 0 {
		t.Error("corrections on clean word")
	}
	for i, s := range data {
		if res.Data[i] != s {
			t.Fatal("data mismatch")
		}
	}
}

func TestDecodeSingleError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := MustNew(f8, 18, 16) // t = 1
	for i := 0; i < 500; i++ {
		data := randData(rng, c)
		cw, _ := c.Encode(data)
		bad, pos := corrupt(rng, c, cw, 1)
		res, err := c.Decode(bad, nil)
		if err != nil {
			t.Fatalf("single error not corrected: %v", err)
		}
		if !res.Flag || res.Corrections != 1 {
			t.Fatalf("flag=%v corrections=%d, want true/1", res.Flag, res.Corrections)
		}
		if res.ErrorPositions[0] != pos[0] {
			t.Fatalf("wrong position %d, want %d", res.ErrorPositions[0], pos[0])
		}
		for j := range cw {
			if res.Codeword[j] != cw[j] {
				t.Fatal("corrected codeword differs from original")
			}
		}
	}
}

// TestDecodeErrorsAndErasuresWithinCapability is the central property:
// any pattern with 2*re + er <= n-k must be corrected exactly.
func TestDecodeErrorsAndErasuresWithinCapability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, params := range [][2]int{{18, 16}, {36, 16}, {255, 223}, {15, 7}} {
		c := MustNew(f8, params[0], params[1])
		d := c.Redundancy()
		for trial := 0; trial < 300; trial++ {
			er := rng.Intn(d + 1)
			maxRe := (d - er) / 2
			re := 0
			if maxRe > 0 {
				re = rng.Intn(maxRe + 1)
			}
			data := randData(rng, c)
			cw, _ := c.Encode(data)
			// Choose er+re distinct positions; first er are erasures.
			positions := rng.Perm(c.N())[: er+re : er+re]
			bad := make([]gf.Elem, c.N())
			copy(bad, cw)
			for _, p := range positions {
				bad[p] ^= gf.Elem(1 + rng.Intn(c.Field().Size()-1))
			}
			res, err := c.Decode(bad, positions[:er])
			if err != nil {
				t.Fatalf("RS(%d,%d) er=%d re=%d: decode failed: %v", params[0], params[1], er, re, err)
			}
			for j := range cw {
				if res.Codeword[j] != cw[j] {
					t.Fatalf("RS(%d,%d) er=%d re=%d: wrong codeword", params[0], params[1], er, re)
				}
			}
			if want := er + re; res.Corrections != want {
				t.Fatalf("corrections=%d, want %d", res.Corrections, want)
			}
		}
	}
}

// TestDecodeErasuresOnlyFullCapacity exercises er = n-k exactly
// (no margin for random errors), the configuration the duplex arbiter
// relies on after masking.
func TestDecodeErasuresOnlyFullCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := MustNew(f8, 36, 16)
	d := c.Redundancy()
	for trial := 0; trial < 100; trial++ {
		data := randData(rng, c)
		cw, _ := c.Encode(data)
		positions := rng.Perm(c.N())[:d:d]
		bad := make([]gf.Elem, c.N())
		copy(bad, cw)
		for _, p := range positions {
			bad[p] ^= gf.Elem(1 + rng.Intn(255))
		}
		res, err := c.Decode(bad, positions)
		if err != nil {
			t.Fatalf("full erasure capacity decode failed: %v", err)
		}
		for j := range cw {
			if res.Codeword[j] != cw[j] {
				t.Fatal("wrong codeword")
			}
		}
	}
}

// TestDecodeErasedButCorrectSymbols: erasure positions whose stored
// value is still right must not be counted as corrections.
func TestDecodeErasedButCorrectSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := MustNew(f8, 18, 16)
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	res, err := c.Decode(cw, []int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrections != 0 || res.Flag {
		t.Errorf("erased-but-correct symbols counted as corrections: %d", res.Corrections)
	}
}

func TestDecodeBeyondCapabilityDetectedOrMiscorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := MustNew(f8, 18, 16) // corrects 1 random error
	detected, miscorrected := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		data := randData(rng, c)
		cw, _ := c.Encode(data)
		bad, _ := corrupt(rng, c, cw, 2) // beyond capability
		res, err := c.Decode(bad, nil)
		if err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("unexpected error type: %v", err)
			}
			detected++
			continue
		}
		// Success must still be a valid codeword: mis-correction.
		if !c.IsCodeword(res.Codeword) {
			t.Fatal("decoder returned a non-codeword")
		}
		same := true
		for j := range cw {
			if res.Codeword[j] != cw[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("two injected errors decoded back to the original codeword; corrupt() must change symbols")
		}
		miscorrected++
	}
	if detected == 0 {
		t.Error("no double errors detected — expected a large detected fraction")
	}
	if miscorrected == 0 {
		t.Error("no mis-corrections in 2000 double-error trials — RS(18,16) should mis-correct a noticeable fraction")
	}
	// For RS(18,16), roughly n*(2^m-1)/C(n,2)/(2^m-1)^2-ish of double
	// errors land inside a decoding sphere; empirically ~10%. Accept a
	// broad band to stay robust across seeds.
	frac := float64(miscorrected) / trials
	if frac < 0.005 || frac > 0.5 {
		t.Errorf("mis-correction fraction %.3f outside plausible band", frac)
	}
}

func TestDecodeTooManyErasures(t *testing.T) {
	c := MustNew(f8, 18, 16)
	cw, _ := c.Encode(make([]gf.Elem, 16))
	_, err := c.Decode(cw, []int{0, 1, 2})
	if !errors.Is(err, ErrUncorrectable) {
		t.Errorf("3 erasures on RS(18,16): err=%v, want ErrUncorrectable", err)
	}
}

func TestDecodeValidation(t *testing.T) {
	c := MustNew(f8, 18, 16)
	cw, _ := c.Encode(make([]gf.Elem, 16))
	if _, err := c.Decode(cw[:17], nil); err == nil {
		t.Error("short word accepted")
	}
	if _, err := c.Decode(cw, []int{-1}); err == nil {
		t.Error("negative erasure position accepted")
	}
	if _, err := c.Decode(cw, []int{18}); err == nil {
		t.Error("erasure position == n accepted")
	}
	if _, err := c.Decode(cw, []int{5, 5}); err == nil {
		t.Error("duplicate erasure accepted")
	}
	bad := make([]gf.Elem, 18)
	bad[0] = 999
	if _, err := c.Decode(bad, nil); err == nil {
		t.Error("out-of-field symbol accepted")
	}
}

func TestCanCorrect(t *testing.T) {
	c := MustNew(f8, 36, 16) // n-k = 20
	cases := []struct {
		er, re int
		want   bool
	}{
		{0, 0, true},
		{0, 10, true},
		{20, 0, true},
		{0, 11, false},
		{21, 0, false},
		{2, 9, true},
		{3, 9, false},
		{-1, 0, false},
		{0, -1, false},
	}
	for _, cse := range cases {
		if got := c.CanCorrect(cse.er, cse.re); got != cse.want {
			t.Errorf("CanCorrect(%d,%d) = %v, want %v", cse.er, cse.re, got, cse.want)
		}
	}
}

func TestNonDefaultFCR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, fcr := range []int{0, 1, 2, 5, 120} {
		c, err := NewWithFCR(f8, 20, 12, fcr)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			data := randData(rng, c)
			cw, _ := c.Encode(data)
			bad, _ := corrupt(rng, c, cw, c.T())
			res, err := c.Decode(bad, nil)
			if err != nil {
				t.Fatalf("fcr=%d: decode failed: %v", fcr, err)
			}
			for j := range cw {
				if res.Codeword[j] != cw[j] {
					t.Fatalf("fcr=%d: wrong codeword", fcr)
				}
			}
		}
	}
}

func TestShortenedCodeEquivalence(t *testing.T) {
	// A shortened RS(18,16) word, zero-extended to the full 255-symbol
	// length, must be a codeword of RS(255,253) with the same fcr.
	rng := rand.New(rand.NewSource(10))
	short := MustNew(f8, 18, 16)
	full := MustNew(f8, 255, 253)
	for i := 0; i < 30; i++ {
		data := randData(rng, short)
		cw, _ := short.Encode(data)
		ext := make([]gf.Elem, 255)
		copy(ext[255-18:], cw)
		if !full.IsCodeword(ext) {
			t.Fatal("zero-extended shortened codeword not in parent code")
		}
	}
}

func TestSmallFieldCode(t *testing.T) {
	// RS(7,3) over GF(8): exercises a non-byte symbol width end to end.
	f3 := gf.MustField(3)
	c := MustNew(f3, 7, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		data := []gf.Elem{gf.Elem(rng.Intn(8)), gf.Elem(rng.Intn(8)), gf.Elem(rng.Intn(8))}
		cw, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		bad, _ := corrupt(rng, c, cw, 2) // t = 2
		res, err := c.Decode(bad, nil)
		if err != nil {
			t.Fatalf("GF(8) decode failed: %v", err)
		}
		for j := range cw {
			if res.Codeword[j] != cw[j] {
				t.Fatal("GF(8) wrong codeword")
			}
		}
	}
}

func TestGoldenVectorRS7_3(t *testing.T) {
	// Hand-checkable golden vector over GF(8), poly x^3+x+1 (0xb),
	// fcr=1: g(x) = (x-a)(x-a^2)(x-a^3)(x-a^4).
	f3 := gf.MustField(3)
	c := MustNew(f3, 7, 3)
	g := c.Generator()
	// alpha=2: a^1=2,a^2=4,a^3=3,a^4=6. g(x) = x^4 + 7x^3 + 3x^2 + 2x + 4
	// computed independently: (x+2)(x+4) = x^2+6x+3 (2^4=8->xor 0xb=3, 2+4=6)
	// (x+3)(x+6) = x^2 + 5x + 7 (3*6: 3=a^3,6=a^4 -> a^7=1? a^7=1 so 3*6=1*? wait)
	// Instead of hand-expansion, assert the known degree/monic and
	// spot-check parity of the all-zero and e_0 datawords.
	if g.Degree() != 4 || g.Lead() != 1 {
		t.Fatalf("generator malformed: %v", g)
	}
	zero, _ := c.Encode([]gf.Elem{0, 0, 0})
	for _, s := range zero {
		if s != 0 {
			t.Fatal("all-zero dataword must encode to all-zero codeword (linearity)")
		}
	}
	// Linearity: encode(a) ^ encode(b) == encode(a^b).
	a := []gf.Elem{1, 5, 2}
	b := []gf.Elem{7, 0, 3}
	ca, _ := c.Encode(a)
	cb, _ := c.Encode(b)
	xor := []gf.Elem{a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2]}
	cx, _ := c.Encode(xor)
	for i := range cx {
		if cx[i] != (ca[i] ^ cb[i]) {
			t.Fatal("code is not linear")
		}
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := MustNew(f8, 18, 16)
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	bad, _ := corrupt(rng, c, cw, 1)
	orig := make([]gf.Elem, len(bad))
	copy(orig, bad)
	if _, err := c.Decode(bad, nil); err != nil {
		t.Fatal(err)
	}
	for i := range bad {
		if bad[i] != orig[i] {
			t.Fatal("Decode mutated its input")
		}
	}
}

func TestPaperCodesCapabilities(t *testing.T) {
	rs1816, rs3616 := paperCodes(t)
	// The paper's headline capabilities: RS(18,16) corrects 1 random
	// error or 2 erasures; RS(36,16) corrects 10 random errors or 20
	// erasures.
	if rs1816.T() != 1 || rs1816.Redundancy() != 2 {
		t.Errorf("RS(18,16): t=%d red=%d", rs1816.T(), rs1816.Redundancy())
	}
	if rs3616.T() != 10 || rs3616.Redundancy() != 20 {
		t.Errorf("RS(36,16): t=%d red=%d", rs3616.T(), rs3616.Redundancy())
	}
}

func BenchmarkEncodeRS1816(b *testing.B) {
	c := MustNew(f8, 18, 16)
	rng := rand.New(rand.NewSource(13))
	data := randData(rng, c)
	dst := make([]gf.Elem, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeTo(dst, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRS3616(b *testing.B) {
	c := MustNew(f8, 36, 16)
	rng := rand.New(rand.NewSource(14))
	data := randData(rng, c)
	dst := make([]gf.Elem, 36)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeTo(dst, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRS1816OneError(b *testing.B) {
	c := MustNew(f8, 18, 16)
	rng := rand.New(rand.NewSource(15))
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	bad, _ := corrupt(rng, c, cw, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(bad, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRS3616TenErrors(b *testing.B) {
	c := MustNew(f8, 36, 16)
	rng := rand.New(rand.NewSource(16))
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	bad, _ := corrupt(rng, c, cw, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(bad, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// decodersAgree checks that BM and Euclid produce identical outcomes
// on one received word: both succeed with the same codeword or both
// report a detected failure.
func decodersAgree(t *testing.T, c *Code, received []gf.Elem, erasures []int) bool {
	t.Helper()
	bm, bmErr := c.Decode(received, erasures)
	eu, euErr := c.DecodeEuclidean(received, erasures)
	if (bmErr != nil) != (euErr != nil) {
		t.Logf("disagreement: BM err=%v, Euclid err=%v", bmErr, euErr)
		return false
	}
	if bmErr != nil {
		return true
	}
	for i := range bm.Codeword {
		if bm.Codeword[i] != eu.Codeword[i] {
			t.Logf("codeword mismatch at %d", i)
			return false
		}
	}
	if bm.Corrections != eu.Corrections || bm.Flag != eu.Flag {
		t.Logf("metadata mismatch: %d/%v vs %d/%v", bm.Corrections, bm.Flag, eu.Corrections, eu.Flag)
		return false
	}
	return true
}

// TestEuclideanDecoderWithinCapability mirrors the central BM property
// through the Sugiyama path.
func TestEuclideanDecoderWithinCapability(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, params := range [][2]int{{18, 16}, {36, 16}, {255, 223}} {
		c := MustNew(f8, params[0], params[1])
		d := c.Redundancy()
		for trial := 0; trial < 200; trial++ {
			er := rng.Intn(d + 1)
			maxRe := (d - er) / 2
			re := 0
			if maxRe > 0 {
				re = rng.Intn(maxRe + 1)
			}
			data := randData(rng, c)
			cw, _ := c.Encode(data)
			positions := rng.Perm(c.N())[: er+re : er+re]
			bad := make([]gf.Elem, c.N())
			copy(bad, cw)
			for _, p := range positions {
				bad[p] ^= gf.Elem(1 + rng.Intn(c.Field().Size()-1))
			}
			res, err := c.DecodeEuclidean(bad, positions[:er])
			if err != nil {
				t.Fatalf("RS(%d,%d) er=%d re=%d: euclid failed: %v", params[0], params[1], er, re, err)
			}
			for j := range cw {
				if res.Codeword[j] != cw[j] {
					t.Fatalf("RS(%d,%d) er=%d re=%d: wrong codeword", params[0], params[1], er, re)
				}
			}
		}
	}
}

// TestDecoderEquivalenceQuick is the decoder-diversity property: the
// two independent key-equation solvers are bounded-distance decoders
// of the same code, so they must agree on every input — including
// beyond-capability patterns where both mis-correct identically or
// both detect.
func TestDecoderEquivalenceQuick(t *testing.T) {
	c := MustNew(f8, 18, 16)
	rng := rand.New(rand.NewSource(41))
	type testCase struct {
		received []gf.Elem
		erasures []int
	}
	gen := func() testCase {
		data := randData(rng, c)
		cw, _ := c.Encode(data)
		// 0..5 corrupted symbols: spans clean, correctable and
		// far-beyond-capability patterns.
		count := rng.Intn(6)
		positions := rng.Perm(c.N())[:count:count]
		for _, p := range positions {
			cw[p] ^= gf.Elem(1 + rng.Intn(255))
		}
		// Sometimes declare a random subset (even wrong positions!)
		// as erasures, up to n-k.
		var erasures []int
		if count > 0 && rng.Intn(2) == 0 {
			erasures = positions[:rng.Intn(min(count, 2)+1)]
		}
		return testCase{cw, erasures}
	}
	for i := 0; i < 3000; i++ {
		tc := gen()
		if !decodersAgree(t, c, tc.received, tc.erasures) {
			t.Fatalf("decoders disagree on %v (erasures %v)", tc.received, tc.erasures)
		}
	}
}

// TestDecoderEquivalenceWideCode stresses the equivalence at t=10.
func TestDecoderEquivalenceWideCode(t *testing.T) {
	c := MustNew(f8, 36, 16)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 800; i++ {
		data := randData(rng, c)
		cw, _ := c.Encode(data)
		count := rng.Intn(15) // up to 4 beyond capability
		for _, p := range rng.Perm(c.N())[:count] {
			cw[p] ^= gf.Elem(1 + rng.Intn(255))
		}
		var erasures []int
		for _, p := range rng.Perm(c.N())[:rng.Intn(8)] {
			erasures = append(erasures, p)
		}
		if !decodersAgree(t, c, cw, erasures) {
			t.Fatalf("decoders disagree (trial %d)", i)
		}
	}
}

func TestEuclideanErasuresOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := MustNew(f8, 36, 16)
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	bad := make([]gf.Elem, len(cw))
	copy(bad, cw)
	positions := rng.Perm(36)[:20:20]
	for _, p := range positions {
		bad[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	res, err := c.DecodeEuclidean(bad, positions)
	if err != nil {
		t.Fatalf("full erasure load failed: %v", err)
	}
	for i := range cw {
		if res.Codeword[i] != cw[i] {
			t.Fatal("wrong codeword")
		}
	}
}

func BenchmarkDecodeEuclideanRS3616TenErrors(b *testing.B) {
	c := MustNew(f8, 36, 16)
	rng := rand.New(rand.NewSource(44))
	data := randData(rng, c)
	cw, _ := c.Encode(data)
	bad, _ := corrupt(rng, c, cw, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeEuclidean(bad, nil); err != nil {
			b.Fatal(err)
		}
	}
}
