// Package gfpoly provides univariate polynomial algebra over the
// finite fields GF(2^m) of internal/gf.
//
// Polynomials are slices of coefficients in ascending degree order:
// index i holds the coefficient of x^i. The zero polynomial is the
// empty (or all-zero) slice; operations normalize results so the
// highest-index coefficient of a nonzero polynomial is nonzero.
//
// All operations are methods on Ring, which binds a field: products,
// remainders, evaluations, formal derivatives and root products, with
// allocation-light implementations built on the gf batch kernels.
//
// The Reed-Solomon hot path in internal/rs no longer routes through
// this package — its encoder, syndrome, locator and Chien/Forney
// kernels operate on fixed workspace buffers — but the full primitive
// set is kept deliberately: the Sugiyama audit decoder
// (rs.DecodeEuclidean) is written against it, the rs and gf tests
// cross-check the fused kernels against these straightforward
// implementations, and future codecs (BCH, interleaved variants) need
// the same algebra.
package gfpoly

import (
	"fmt"
	"strings"

	"repro/internal/gf"
)

// Poly is a polynomial over some GF(2^m); index i is the coefficient
// of x^i. A nil or empty Poly is the zero polynomial.
type Poly []gf.Elem

// Ring performs polynomial arithmetic over a fixed field.
type Ring struct {
	F *gf.Field
}

// NewRing returns a polynomial ring over the given field.
func NewRing(f *gf.Field) *Ring { return &Ring{F: f} }

// Zero returns the zero polynomial.
func Zero() Poly { return nil }

// One returns the constant polynomial 1.
func One() Poly { return Poly{1} }

// Monomial returns c*x^deg.
func Monomial(deg int, c gf.Elem) Poly {
	if c == 0 {
		return nil
	}
	p := make(Poly, deg+1)
	p[deg] = c
	return p
}

// trim removes trailing zero coefficients so Degree is well defined.
func trim(p Poly) Poly {
	i := len(p)
	for i > 0 && p[i-1] == 0 {
		i--
	}
	return p[:i]
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(trim(p)) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(trim(p)) == 0 }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	if len(p) == 0 {
		return nil
	}
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Coeff returns the coefficient of x^i, 0 when i exceeds the degree.
func (p Poly) Coeff(i int) gf.Elem {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// Lead returns the leading coefficient of p, 0 for the zero polynomial.
func (p Poly) Lead() gf.Elem {
	q := trim(p)
	if len(q) == 0 {
		return 0
	}
	return q[len(q)-1]
}

// Equal reports whether p and q represent the same polynomial,
// ignoring trailing zeros.
func (p Poly) Equal(q Poly) bool {
	a, b := trim(p), trim(q)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders p like "x^3 + 5x + 1" with coefficients in decimal.
func (p Poly) String() string {
	q := trim(p)
	if len(q) == 0 {
		return "0"
	}
	var terms []string
	for i := len(q) - 1; i >= 0; i-- {
		c := q[i]
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			terms = append(terms, fmt.Sprintf("%d", c))
		case i == 1 && c == 1:
			terms = append(terms, "x")
		case i == 1:
			terms = append(terms, fmt.Sprintf("%dx", c))
		case c == 1:
			terms = append(terms, fmt.Sprintf("x^%d", i))
		default:
			terms = append(terms, fmt.Sprintf("%dx^%d", c, i))
		}
	}
	return strings.Join(terms, " + ")
}

// Add returns p + q (which is also p - q in characteristic 2).
func (r *Ring) Add(p, q Poly) Poly {
	if len(q) > len(p) {
		p, q = q, p
	}
	out := make(Poly, len(p))
	copy(out, p)
	for i, c := range q {
		out[i] ^= c
	}
	return trim(out)
}

// Scale returns c*p.
func (r *Ring) Scale(p Poly, c gf.Elem) Poly {
	if c == 0 || len(trim(p)) == 0 {
		return nil
	}
	out := make(Poly, len(p))
	r.F.MulSlice(out, p, c)
	return trim(out)
}

// Mul returns the product p*q.
func (r *Ring) Mul(p, q Poly) Poly {
	p, q = trim(p), trim(q)
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, pc := range p {
		if pc == 0 {
			continue
		}
		r.F.AddMulSlice(out[i:], q, pc)
	}
	return trim(out)
}

// MulXPow returns p * x^k, shifting coefficients up by k (k >= 0).
func (r *Ring) MulXPow(p Poly, k int) Poly {
	p = trim(p)
	if len(p) == 0 {
		return nil
	}
	out := make(Poly, len(p)+k)
	copy(out[k:], p)
	return out
}

// DivMod returns the quotient and remainder of p divided by d.
// It panics when d is the zero polynomial.
func (r *Ring) DivMod(p, d Poly) (quo, rem Poly) {
	d = trim(d)
	if len(d) == 0 {
		panic("gfpoly: division by zero polynomial")
	}
	rem = p.Clone()
	rem = trim(rem)
	dd := len(d) - 1
	lcInv := r.F.Inv(d[dd])
	if len(rem)-1 < dd {
		return nil, rem
	}
	quo = make(Poly, len(rem)-dd)
	for len(rem)-1 >= dd {
		shift := len(rem) - 1 - dd
		factor := r.F.Mul(rem[len(rem)-1], lcInv)
		quo[shift] = factor
		r.F.AddMulSlice(rem[shift:], d, factor)
		rem = trim(rem)
		if len(rem) == 0 {
			break
		}
	}
	return trim(quo), rem
}

// Mod returns p mod d.
func (r *Ring) Mod(p, d Poly) Poly {
	_, rem := r.DivMod(p, d)
	return rem
}

// ModXPow returns p mod x^k, i.e. p truncated to degree < k.
func (r *Ring) ModXPow(p Poly, k int) Poly {
	if len(p) <= k {
		return trim(p)
	}
	return trim(p[:k].Clone())
}

// Eval evaluates p at x using Horner's method.
func (r *Ring) Eval(p Poly, x gf.Elem) gf.Elem {
	var acc gf.Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = r.F.Mul(acc, x) ^ p[i]
	}
	return acc
}

// Deriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish: d/dx sum(c_i x^i) = sum over odd i of
// c_i x^(i-1).
func (r *Ring) Deriv(p Poly) Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return trim(out)
}

// FromRoots returns the monic polynomial with the given roots:
// prod_i (x - roots[i]).
func (r *Ring) FromRoots(roots []gf.Elem) Poly {
	p := One()
	for _, root := range roots {
		// (x + root) in characteristic 2.
		p = r.Mul(p, Poly{root, 1})
	}
	return p
}

// LocatorFromPositions returns the classic locator polynomial
// prod_i (1 - x*alpha^pos_i), whose roots are alpha^(-pos_i). It is
// used for Reed-Solomon erasure locators.
func (r *Ring) LocatorFromPositions(positions []int) Poly {
	p := One()
	for _, pos := range positions {
		p = r.Mul(p, Poly{1, r.F.Exp(pos)})
	}
	return p
}

// Roots exhaustively finds the roots of p among all field elements
// (Chien-search style over the full field). Returned in increasing
// element order. The zero polynomial has every element as a root and
// returns nil to signal the degenerate case.
func (r *Ring) Roots(p Poly) []gf.Elem {
	if p.IsZero() {
		return nil
	}
	var roots []gf.Elem
	for e := 0; e < r.F.Size(); e++ {
		if r.Eval(p, gf.Elem(e)) == 0 {
			roots = append(roots, gf.Elem(e))
		}
	}
	return roots
}
