package gfpoly

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

var f8 = gf.MustField(8)

func ring() *Ring { return NewRing(f8) }

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	deg := rng.Intn(maxDeg + 1)
	p := make(Poly, deg+1)
	for i := range p {
		p[i] = gf.Elem(rng.Intn(f8.Size()))
	}
	return trim(p)
}

func polyCfg(seed int64, maxDeg int) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 800,
		Rand:     rng,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randPoly(r, maxDeg))
			}
		},
	}
}

func TestDegreeAndZero(t *testing.T) {
	if !Zero().IsZero() {
		t.Error("Zero() not zero")
	}
	if Zero().Degree() != -1 {
		t.Error("zero degree != -1")
	}
	if One().Degree() != 0 {
		t.Error("One degree != 0")
	}
	p := Poly{1, 2, 0, 0}
	if p.Degree() != 1 {
		t.Errorf("Degree = %d, want 1", p.Degree())
	}
	if Monomial(3, 5).Degree() != 3 {
		t.Error("Monomial degree wrong")
	}
	if Monomial(3, 0).Degree() != -1 {
		t.Error("zero Monomial should be zero poly")
	}
}

func TestCoeffAndLead(t *testing.T) {
	p := Poly{7, 0, 3}
	if p.Coeff(0) != 7 || p.Coeff(1) != 0 || p.Coeff(2) != 3 {
		t.Error("Coeff wrong")
	}
	if p.Coeff(5) != 0 || p.Coeff(-1) != 0 {
		t.Error("out-of-range Coeff should be 0")
	}
	if p.Lead() != 3 {
		t.Error("Lead wrong")
	}
	if Zero().Lead() != 0 {
		t.Error("Lead of zero poly should be 0")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{nil, "0"},
		{Poly{1}, "1"},
		{Poly{0, 1}, "x"},
		{Poly{0, 3}, "3x"},
		{Poly{1, 0, 1}, "x^2 + 1"},
		{Poly{2, 1, 5}, "5x^2 + x + 2"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []gf.Elem(c.p), got, c.want)
		}
	}
}

func TestAddProperties(t *testing.T) {
	r := ring()
	comm := func(p, q Poly) bool { return r.Add(p, q).Equal(r.Add(q, p)) }
	if err := quick.Check(comm, polyCfg(1, 12)); err != nil {
		t.Errorf("add commutativity: %v", err)
	}
	selfCancel := func(p Poly) bool { return r.Add(p, p).IsZero() }
	if err := quick.Check(selfCancel, polyCfg(2, 12)); err != nil {
		t.Errorf("p+p=0: %v", err)
	}
	zeroIdent := func(p Poly) bool { return r.Add(p, Zero()).Equal(p) }
	if err := quick.Check(zeroIdent, polyCfg(3, 12)); err != nil {
		t.Errorf("p+0=p: %v", err)
	}
}

func TestMulProperties(t *testing.T) {
	r := ring()
	comm := func(p, q Poly) bool { return r.Mul(p, q).Equal(r.Mul(q, p)) }
	if err := quick.Check(comm, polyCfg(4, 8)); err != nil {
		t.Errorf("mul commutativity: %v", err)
	}
	assoc := func(p, q, s Poly) bool {
		return r.Mul(r.Mul(p, q), s).Equal(r.Mul(p, r.Mul(q, s)))
	}
	if err := quick.Check(assoc, polyCfg(5, 6)); err != nil {
		t.Errorf("mul associativity: %v", err)
	}
	dist := func(p, q, s Poly) bool {
		return r.Mul(p, r.Add(q, s)).Equal(r.Add(r.Mul(p, q), r.Mul(p, s)))
	}
	if err := quick.Check(dist, polyCfg(6, 6)); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	oneIdent := func(p Poly) bool { return r.Mul(p, One()).Equal(p) }
	if err := quick.Check(oneIdent, polyCfg(7, 10)); err != nil {
		t.Errorf("p*1=p: %v", err)
	}
	degreeAdds := func(p, q Poly) bool {
		if p.IsZero() || q.IsZero() {
			return r.Mul(p, q).IsZero()
		}
		return r.Mul(p, q).Degree() == p.Degree()+q.Degree()
	}
	if err := quick.Check(degreeAdds, polyCfg(8, 10)); err != nil {
		t.Errorf("deg(pq)=deg p+deg q: %v", err)
	}
}

func TestEvalIsRingHom(t *testing.T) {
	r := ring()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		p := randPoly(rng, 10)
		q := randPoly(rng, 10)
		x := gf.Elem(rng.Intn(f8.Size()))
		if r.Eval(r.Add(p, q), x) != r.F.Add(r.Eval(p, x), r.Eval(q, x)) {
			t.Fatal("Eval not additive")
		}
		if r.Eval(r.Mul(p, q), x) != r.F.Mul(r.Eval(p, x), r.Eval(q, x)) {
			t.Fatal("Eval not multiplicative")
		}
	}
}

func TestEvalKnown(t *testing.T) {
	r := ring()
	// p(x) = x^2 + 3x + 2 at x=1: 1 ^ 3 ^ 2 = 0 in GF(2^8).
	p := Poly{2, 3, 1}
	if got := r.Eval(p, 1); got != 0 {
		t.Errorf("Eval = %d, want 0", got)
	}
	if got := r.Eval(p, 0); got != 2 {
		t.Errorf("Eval(0) = %d, want constant term 2", got)
	}
	if got := r.Eval(nil, 17); got != 0 {
		t.Errorf("Eval(zero poly) = %d", got)
	}
}

func TestDivModIdentity(t *testing.T) {
	r := ring()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		p := randPoly(rng, 20)
		d := randPoly(rng, 8)
		if d.IsZero() {
			continue
		}
		quo, rem := r.DivMod(p, d)
		if !rem.IsZero() && rem.Degree() >= d.Degree() {
			t.Fatalf("rem degree %d >= divisor degree %d", rem.Degree(), d.Degree())
		}
		recon := r.Add(r.Mul(quo, d), rem)
		if !recon.Equal(p) {
			t.Fatalf("quo*d + rem != p:\n p=%v\n d=%v\n quo=%v rem=%v", p, d, quo, rem)
		}
	}
}

func TestDivModByZeroPanics(t *testing.T) {
	r := ring()
	defer func() {
		if recover() == nil {
			t.Error("DivMod by zero did not panic")
		}
	}()
	r.DivMod(Poly{1, 2}, Zero())
}

func TestModXPow(t *testing.T) {
	r := ring()
	p := Poly{1, 2, 3, 4, 5}
	if got := r.ModXPow(p, 2); !got.Equal(Poly{1, 2}) {
		t.Errorf("ModXPow = %v", got)
	}
	if got := r.ModXPow(p, 10); !got.Equal(p) {
		t.Errorf("ModXPow with large k should be identity, got %v", got)
	}
	if got := r.ModXPow(p, 0); !got.IsZero() {
		t.Errorf("ModXPow(p,0) = %v, want 0", got)
	}
}

func TestMulXPow(t *testing.T) {
	r := ring()
	p := Poly{1, 2}
	got := r.MulXPow(p, 3)
	if !got.Equal(Poly{0, 0, 0, 1, 2}) {
		t.Errorf("MulXPow = %v", got)
	}
	if r.MulXPow(Zero(), 4) != nil {
		t.Error("MulXPow of zero should be zero")
	}
	// Consistency with Mul by monomial.
	if !got.Equal(r.Mul(p, Monomial(3, 1))) {
		t.Error("MulXPow differs from Mul by x^3")
	}
}

func TestDerivLeibnizQuick(t *testing.T) {
	r := ring()
	// Formal derivative satisfies (pq)' = p'q + pq'.
	leibniz := func(p, q Poly) bool {
		lhs := r.Deriv(r.Mul(p, q))
		rhs := r.Add(r.Mul(r.Deriv(p), q), r.Mul(p, r.Deriv(q)))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(leibniz, polyCfg(11, 8)); err != nil {
		t.Errorf("Leibniz rule: %v", err)
	}
}

func TestDerivKnown(t *testing.T) {
	r := ring()
	// d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 -> in char 2: x^2 + 1
	// (even exponents vanish: derivative keeps odd-degree coefficients).
	p := Poly{1, 1, 1, 1}
	want := Poly{1, 0, 1}
	if got := r.Deriv(p); !got.Equal(want) {
		t.Errorf("Deriv = %v, want %v", got, want)
	}
	if r.Deriv(Poly{5}) != nil {
		t.Error("derivative of constant should be zero")
	}
}

func TestFromRoots(t *testing.T) {
	r := ring()
	roots := []gf.Elem{1, 2, 3}
	p := r.FromRoots(roots)
	if p.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", p.Degree())
	}
	if p.Lead() != 1 {
		t.Error("FromRoots should be monic")
	}
	for _, root := range roots {
		if r.Eval(p, root) != 0 {
			t.Errorf("root %d not a root", root)
		}
	}
	// Non-roots must not evaluate to zero (all roots distinct here).
	if r.Eval(p, 4) == 0 {
		t.Error("4 should not be a root")
	}
	if !r.FromRoots(nil).Equal(One()) {
		t.Error("FromRoots(nil) != 1")
	}
}

func TestLocatorFromPositions(t *testing.T) {
	r := ring()
	positions := []int{0, 5, 17}
	loc := r.LocatorFromPositions(positions)
	if loc.Degree() != len(positions) {
		t.Fatalf("degree = %d, want %d", loc.Degree(), len(positions))
	}
	// Roots must be alpha^{-pos}.
	for _, pos := range positions {
		root := r.F.Exp(-pos)
		if r.Eval(loc, root) != 0 {
			t.Errorf("alpha^-%d is not a root", pos)
		}
	}
	if !r.LocatorFromPositions(nil).Equal(One()) {
		t.Error("empty locator != 1")
	}
}

func TestRoots(t *testing.T) {
	r := ring()
	p := r.FromRoots([]gf.Elem{7, 42})
	roots := r.Roots(p)
	if len(roots) != 2 || roots[0] != 7 || roots[1] != 42 {
		t.Errorf("Roots = %v, want [7 42]", roots)
	}
	if r.Roots(Zero()) != nil {
		t.Error("Roots of zero poly should be nil")
	}
	if got := r.Roots(One()); len(got) != 0 {
		t.Errorf("Roots of 1 = %v, want none", got)
	}
}

func TestScale(t *testing.T) {
	r := ring()
	p := Poly{1, 2, 3}
	if !r.Scale(p, 1).Equal(p) {
		t.Error("Scale by 1 not identity")
	}
	if r.Scale(p, 0) != nil {
		t.Error("Scale by 0 not zero")
	}
	got := r.Scale(p, 2)
	want := Poly{f8.Mul(1, 2), f8.Mul(2, 2), f8.Mul(3, 2)}
	if !got.Equal(want) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Poly{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases original")
	}
	if Zero().Clone() != nil {
		t.Error("Clone of zero should be nil")
	}
}

func BenchmarkMulDeg20(b *testing.B) {
	r := ring()
	rng := rand.New(rand.NewSource(20))
	p := randPoly(rng, 20)
	q := randPoly(rng, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Mul(p, q)
	}
}

func BenchmarkEvalDeg36(b *testing.B) {
	r := ring()
	rng := rand.New(rand.NewSource(21))
	p := randPoly(rng, 36)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Eval(p, 57)
	}
}
