package memsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/campaign"
	"repro/internal/duplex"
	"repro/internal/gf"
	"repro/internal/rs"
	"repro/internal/simplex"
)

var (
	f8     = gf.MustField(8)
	code   = rs.MustNew(f8, 18, 16)
	code36 = rs.MustNew(f8, 36, 16)
)

func TestValidate(t *testing.T) {
	good := Config{Code: code, LambdaBit: 1e-5, Horizon: 48, Trials: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Code: nil, Horizon: 1, Trials: 1},
		{Code: code, LambdaBit: -1, Horizon: 1, Trials: 1},
		{Code: code, LambdaSymbol: -1, Horizon: 1, Trials: 1},
		{Code: code, ScrubPeriod: -1, Horizon: 1, Trials: 1},
		{Code: code, DetectionLatency: -1, Horizon: 1, Trials: 1},
		{Code: code, Horizon: 0, Trials: 1},
		{Code: code, Horizon: math.NaN(), Trials: 1},
		{Code: code, Horizon: 1, Trials: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNoFaultsAllCorrect(t *testing.T) {
	res, err := Run(Config{Code: code, Horizon: 1000, Trials: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 50 || res.WrongOutput != 0 || res.NoOutput != 0 {
		t.Errorf("fault-free run: %+v", res)
	}
	if res.FailFraction() != 0 || res.CapabilityExceededFraction() != 0 {
		t.Error("fail fractions nonzero without faults")
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	base := Config{
		Code: code, Duplex: true,
		LambdaBit: 2e-4, LambdaSymbol: 1e-5,
		ScrubPeriod: 10, Horizon: 48, Trials: 300, Seed: 42,
	}
	var results []*Result
	for _, workers := range []int{1, 4, 7, 8} {
		cfg := base
		cfg.Workers = workers
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Config = Config{} // worker count must be the only difference
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("worker count changed results:\nbase: %+v\nvariant %d: %+v", results[0], i, results[i])
		}
	}
}

// TestResumedCampaignMatchesUninterrupted interrupts a checkpointed
// fault-injection campaign partway and verifies the resumed run is
// bit-identical to an uninterrupted one — the engine's resumability
// guarantee exercised through the real simulator.
func TestResumedCampaignMatchesUninterrupted(t *testing.T) {
	cfg := Config{
		Code: code, Duplex: true,
		LambdaBit: 3e-4, LambdaSymbol: 2e-5,
		ScrubPeriod: 8, Horizon: 48, Trials: 600, Seed: 77,
	}
	want, _, err := RunCampaign(cfg, campaign.Config{Workers: 4, ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	cp := filepath.Join(t.TempDir(), "memsim.ckpt.json")
	// Interrupted run: a trial budget makes workers fail once ~half
	// the campaign has been dispatched; completed shards land in the
	// checkpoint.
	scn, err := cfg.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	budget := &budgetScenario{Scenario: scn, remaining: 300}
	if _, err := campaign.Run(budget, campaign.Config{Workers: 4, ShardSize: 64, Checkpoint: cp}); err == nil {
		t.Fatal("interrupted campaign reported success")
	}

	res, cres, err := RunCampaign(cfg, campaign.Config{Workers: 4, ShardSize: 64, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if cres.ResumedTrials == 0 {
		t.Fatal("resume recomputed every trial")
	}
	if !reflect.DeepEqual(want, res) {
		t.Errorf("resumed campaign diverged:\nwant %+v\ngot  %+v", want, res)
	}
}

// budgetScenario wraps a scenario so its workers fail after a shared
// number of trials, simulating an interruption mid-campaign.
type budgetScenario struct {
	campaign.Scenario
	remaining int64
}

func (b *budgetScenario) NewWorker() (campaign.Worker, error) {
	w, err := b.Scenario.NewWorker()
	if err != nil {
		return nil, err
	}
	return &budgetWorker{inner: w, budget: &b.remaining}, nil
}

type budgetWorker struct {
	inner  campaign.Worker
	budget *int64
}

func (w *budgetWorker) Trial(trial int, acc *campaign.Acc) error {
	if atomic.AddInt64(w.budget, -1) < 0 {
		return errInterrupted
	}
	return w.inner.Trial(trial, acc)
}

var errInterrupted = errors.New("simulated interruption")

// TestEarlyStopResolvesFailureFraction drives the real simulator with
// a CI-width stopping rule: the campaign must stop before the full
// trial budget while the capability-exceeded estimate is resolved to
// the requested precision.
func TestEarlyStopResolvesFailureFraction(t *testing.T) {
	cfg := Config{
		Code: code, LambdaBit: 6e-4, LambdaSymbol: 2e-4,
		Horizon: 48, Trials: 200000, Seed: 4,
	}
	res, cres, err := RunCampaign(cfg, campaign.Config{
		Workers: 4,
		Stop: &campaign.EarlyStop{
			Counter:      CounterCapabilityExceeded,
			RelHalfWidth: 0.10,
			MinTrials:    2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cres.EarlyStopped || res.Trials >= cfg.Trials {
		t.Fatalf("campaign should stop early: ran %d of %d", res.Trials, cfg.Trials)
	}
	p := res.CapabilityExceededFraction()
	lo, hi := WilsonInterval(res.CapabilityExceeded, res.Trials, 1.96)
	if (hi-lo)/2 > 0.10*p {
		t.Errorf("stopped with interval [%v, %v] still wider than 10%% of %v", lo, hi, p)
	}
}

func TestExtremeRatesMostlyFail(t *testing.T) {
	res, err := Run(Config{
		Code: code, LambdaBit: 0.1, Horizon: 48, Trials: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailFraction() < 0.9 {
		t.Errorf("fail fraction %v under extreme SEU rate, want ~1", res.FailFraction())
	}
	if res.SEUs == 0 {
		t.Error("no SEUs recorded")
	}
}

func TestCountersAccumulate(t *testing.T) {
	res, err := Run(Config{
		Code: code, Duplex: true,
		LambdaBit: 1e-3, LambdaSymbol: 1e-4,
		ScrubPeriod: 12, Horizon: 48, Trials: 50, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SEUs == 0 || res.PermanentFaults == 0 {
		t.Errorf("fault counters empty: %+v", res)
	}
	// 48h horizon / 12h period = 3 interior scrubs (at 12, 24, 36) and
	// one at 48 is the horizon boundary (excluded); allow exactly 4
	// per trial if boundary included — assert the deterministic count.
	wantScrubs := int64(50 * 3)
	if res.ScrubOps != wantScrubs {
		t.Errorf("ScrubOps = %d, want %d", res.ScrubOps, wantScrubs)
	}
	if res.Correct+res.WrongOutput+res.NoOutput != res.Trials {
		t.Error("outcome counts do not partition trials")
	}
}

// TestSimplexMatchesMarkovChain is the cross-validation experiment:
// the observed capability-exceeded fraction must sit inside a wide
// confidence band around the chain's Fail probability.
func TestSimplexMatchesMarkovChain(t *testing.T) {
	// Rates chosen so P_fail ~ 0.1 at 48h: big enough for Monte Carlo,
	// small enough to stay in the paper's regime structurally.
	lambda := 6e-4 // per bit-hour
	lambdaE := 2e-4
	p := simplex.Params{N: 18, K: 16, M: 8, Lambda: lambda, LambdaE: lambdaE}
	want, err := simplex.FailProbabilities(p, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code: code, LambdaBit: lambda, LambdaSymbol: lambdaE,
		Horizon: 48, Trials: 20000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := WilsonInterval(res.CapabilityExceeded, res.Trials, 4) // ~4 sigma
	if want[0] < lo || want[0] > hi {
		t.Errorf("chain P_fail %v outside Monte Carlo band [%v, %v] (observed %v)",
			want[0], lo, hi, res.CapabilityExceededFraction())
	}
	// For simplex the real decoder fails exactly when the pattern
	// exceeds capability, so outcome-fail and capability-exceeded
	// must coincide.
	if res.CapabilityExceeded != res.WrongOutput+res.NoOutput {
		t.Errorf("simplex: capability-exceeded %d != failures %d",
			res.CapabilityExceeded, res.WrongOutput+res.NoOutput)
	}
}

// TestSimplexScrubbedMatchesMarkovChain repeats cross-validation with
// exponential scrubbing, which the chain models exactly.
func TestSimplexScrubbedMatchesMarkovChain(t *testing.T) {
	lambda := 1.2e-3
	p := simplex.Params{N: 18, K: 16, M: 8, Lambda: lambda, ScrubRate: 0.25}
	want, err := simplex.FailProbabilities(p, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code: code, LambdaBit: lambda,
		ScrubPeriod: 4, ExponentialScrub: true,
		Horizon: 48, Trials: 20000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := WilsonInterval(res.CapabilityExceeded, res.Trials, 4)
	if want[0] < lo || want[0] > hi {
		t.Errorf("scrubbed chain P_fail %v outside band [%v, %v] (observed %v)",
			want[0], lo, hi, res.CapabilityExceededFraction())
	}
	if res.ScrubOps == 0 {
		t.Error("no scrubs recorded")
	}
}

// TestDuplexMatchesMarkovChain cross-validates the duplex chain and
// verifies the documented conservatism: the chain's Fail state
// (either word exceeds capability) must match the simulator's
// capability-exceeded fraction, while the real arbiter's outcome
// failures are rarer.
func TestDuplexMatchesMarkovChain(t *testing.T) {
	lambda := 6e-4
	lambdaE := 2e-4
	p := duplex.Params{N: 18, K: 16, M: 8, Lambda: lambda, LambdaE: lambdaE}
	want, err := duplex.FailProbabilities(p, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code: code, Duplex: true,
		LambdaBit: lambda, LambdaSymbol: lambdaE,
		Horizon: 48, Trials: 20000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := WilsonInterval(res.CapabilityExceeded, res.Trials, 4)
	if want[0] < lo || want[0] > hi {
		t.Errorf("duplex chain P_fail %v outside band [%v, %v] (observed %v)",
			want[0], lo, hi, res.CapabilityExceededFraction())
	}
	if res.FailFraction() > res.CapabilityExceededFraction() {
		t.Errorf("arbiter failures (%v) exceed capability-exceeded (%v); chain should be conservative",
			res.FailFraction(), res.CapabilityExceededFraction())
	}
}

func TestDuplexMasksManySingleSidedErasures(t *testing.T) {
	// Permanent faults only, duplex: single-sided erasures are masked,
	// so even many faults rarely break the pair, unlike simplex.
	lambdaE := 2e-3
	sim, err := Run(Config{
		Code: code, LambdaSymbol: lambdaE,
		Horizon: 100, Trials: 4000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := Run(Config{
		Code: code, Duplex: true, LambdaSymbol: lambdaE,
		Horizon: 100, Trials: 4000, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dup.FailFraction() >= sim.FailFraction()/2 {
		t.Errorf("duplex (%v) should beat simplex (%v) clearly under permanent faults",
			dup.FailFraction(), sim.FailFraction())
	}
}

// TestDuplexScrubbedMatchesMarkovChain: with the default (no
// cross-repair) scrub semantics, the absorbing Fail state of the chain
// must agree with the simulator's capability-exceeded fraction even
// under scrubbing — the regression test for the scrub-semantics gap.
func TestDuplexScrubbedMatchesMarkovChain(t *testing.T) {
	lambda := 4e-4
	p := duplex.Params{N: 18, K: 16, M: 8, Lambda: lambda, ScrubRate: 0.25}
	want, err := duplex.FailProbabilities(p, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code: code, Duplex: true, LambdaBit: lambda,
		ScrubPeriod: 4, ExponentialScrub: true,
		Horizon: 48, Trials: 20000, Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := WilsonInterval(res.CapabilityExceeded, res.Trials, 4)
	if want[0] < lo || want[0] > hi {
		t.Errorf("scrubbed duplex chain P_fail %v outside band [%v, %v] (observed %v)",
			want[0], lo, hi, res.CapabilityExceededFraction())
	}
}

// TestDuplexDoubleSidedErasureRates: the paper's single-sided clean->Y
// rate underestimates double-erasure accumulation by 2 per step; the
// DoubleSidedErasures option must close the gap with the simulator.
func TestDuplexDoubleSidedErasureRates(t *testing.T) {
	lambdaE := 3e-4
	horizon := 200.0
	paper := duplex.Params{N: 18, K: 16, M: 8, LambdaE: lambdaE}
	physical := paper
	physical.Opts.DoubleSidedErasures = true
	paperP, err := duplex.FailProbabilities(paper, []float64{horizon})
	if err != nil {
		t.Fatal(err)
	}
	physP, err := duplex.FailProbabilities(physical, []float64{horizon})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code: code, Duplex: true, LambdaSymbol: lambdaE,
		Horizon: horizon, Trials: 200000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := WilsonInterval(res.CapabilityExceeded, res.Trials, 4)
	if physP[0] < lo || physP[0] > hi {
		t.Errorf("double-sided chain %v outside Monte Carlo band [%v, %v]", physP[0], lo, hi)
	}
	// The paper-literal rates must undercount by roughly 2^3 here
	// (X >= 3 is the failure mode, each X arrival undercounted 2x).
	ratio := physP[0] / paperP[0]
	if ratio < 4 || ratio > 16 {
		t.Errorf("double-sided/paper ratio = %v, want ~8", ratio)
	}
}

func TestCrossRepairReducesFailures(t *testing.T) {
	base := Config{
		Code: code, Duplex: true, LambdaBit: 4e-4,
		ScrubPeriod: 4, Horizon: 48, Trials: 10000, Seed: 22,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	repaired := base
	repaired.CrossRepair = true
	rep, err := Run(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapabilityExceededFraction() >= plain.CapabilityExceededFraction()/2 {
		t.Errorf("cross-repair should clearly reduce capability exceedance: %v vs %v",
			rep.CapabilityExceededFraction(), plain.CapabilityExceededFraction())
	}
}

func TestScrubbingHelps(t *testing.T) {
	base := Config{
		Code: code, LambdaBit: 3e-4, Horizon: 48, Trials: 6000, Seed: 9,
	}
	bare, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed := base
	scrubbed.ScrubPeriod = 2
	s, err := Run(scrubbed)
	if err != nil {
		t.Fatal(err)
	}
	if s.FailFraction() >= bare.FailFraction()/2 {
		t.Errorf("scrubbing did not clearly help: %v vs %v", s.FailFraction(), bare.FailFraction())
	}
}

func TestScrubMiscorrectionEntrenchment(t *testing.T) {
	// At high SEU rates some scrub passes decode beyond capability and
	// entrench a wrong codeword; the counter must observe this.
	res, err := Run(Config{
		Code: code, LambdaBit: 5e-2, ScrubPeriod: 4,
		Horizon: 48, Trials: 2000, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScrubMiscorrections == 0 {
		t.Error("no scrub mis-corrections observed at extreme rates")
	}
	if res.WrongOutput == 0 {
		t.Error("entrenched mis-corrections should surface as wrong outputs")
	}
}

func TestDetectionLatencyDegradesCorrection(t *testing.T) {
	// With immediate location, permanent faults are erasures
	// (capability n-k); with infinite latency they act as random
	// errors (capability (n-k)/2), so failures must increase.
	base := Config{
		Code: code36, LambdaSymbol: 2e-3, Horizon: 200, Trials: 4000, Seed: 11,
	}
	located, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	blind := base
	blind.DetectionLatency = 1e9
	b, err := Run(blind)
	if err != nil {
		t.Fatal(err)
	}
	if b.FailFraction() <= located.FailFraction() {
		t.Errorf("undetected permanent faults should fail more: blind %v vs located %v",
			b.FailFraction(), located.FailFraction())
	}
}

func TestVerdictTally(t *testing.T) {
	res, err := Run(Config{
		Code: code, Duplex: true, LambdaBit: 2e-4,
		Horizon: 48, Trials: 3000, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Verdicts {
		total += c
	}
	if total != res.Trials {
		t.Errorf("verdicts (%d) do not partition trials (%d)", total, res.Trials)
	}
	if res.Verdicts[arbiter.NoError]+res.Verdicts[arbiter.CorrectedAgree] == 0 {
		t.Error("no clean/corrected verdicts at moderate rates")
	}
}

func TestPaperBERPrefactor(t *testing.T) {
	res := &Result{
		Config: Config{Code: code}, Trials: 100, CapabilityExceeded: 10,
	}
	// RS(18,16)/m=8 prefactor is 1.0.
	if got := res.PaperBER(); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("PaperBER = %v, want 0.1", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Error("empty trials should return [0,1]")
	}
	lo, hi = WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] must contain the point estimate", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Errorf("95%% interval [%v,%v] too wide for n=100, p=0.5", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100, 1.96)
	if lo != 0 {
		t.Errorf("lo = %v, want clamped to 0", lo)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 1-1e-12 {
		t.Errorf("hi = %v, want ~1 at p-hat = 1", hi)
	}
	if lo > 0.97 {
		t.Errorf("lo = %v, want meaningfully below 1 for n=100", lo)
	}
}

func BenchmarkTrialSimplex(b *testing.B) {
	cfg := Config{
		Code: code, LambdaBit: 1e-4, LambdaSymbol: 1e-5,
		ScrubPeriod: 12, Horizon: 48, Trials: 1, Seed: 13, Workers: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialDuplex(b *testing.B) {
	cfg := Config{
		Code: code, Duplex: true, LambdaBit: 1e-4, LambdaSymbol: 1e-5,
		ScrubPeriod: 12, Horizon: 48, Trials: 1, Seed: 14, Workers: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// batchGoldenCases are fixed-seed configurations whose complete
// campaign output is pinned across the batch-decode switch: routing
// the scrub and final-read decodes through rs.BatchDecoder.DecodeAll
// must reproduce the per-word decode outcomes byte for byte (decoding
// consumes no randomness, so any divergence is a decode-semantics
// change, not noise).
func batchGoldenCases() []struct {
	name     string
	cfg      Config
	counters map[string]int64
	digest   string
} {
	return []struct {
		name     string
		cfg      Config
		counters map[string]int64
		digest   string
	}{
		{
			name: "simplex/scrub+latency",
			cfg: Config{
				Code: code, LambdaBit: 2e-4, LambdaSymbol: 1e-3,
				ScrubPeriod: 6, DetectionLatency: 4,
				Horizon: 48, Trials: 800, Seed: 5,
			},
			counters: map[string]int64{
				"capability_exceeded": 290, "correct": 510, "data_bit_errors": 628,
				"no_output": 212, "permanent_faults": 720, "scrub_miscorrections": 147,
				"scrub_ops": 5600, "seus": 1060, "wrong_output": 78,
			},
			digest: "df0ea5af5e7b60eb421f2f55e9544efaac9c99951c2a25bad85c7c0b7b50efa4",
		},
		{
			name: "duplex/scrub",
			cfg: Config{
				Code: code, Duplex: true, LambdaBit: 3e-4, LambdaSymbol: 8e-4,
				ScrubPeriod: 8, Horizon: 48, Trials: 500, Seed: 9,
			},
			counters: map[string]int64{
				"capability_exceeded": 222, "correct": 454, "data_bit_errors": 44,
				"no_output": 39, "permanent_faults": 693, "scrub_miscorrections": 47,
				"scrub_ops": 2500, "seus": 2151,
				"verdict/both-failed": 33, "verdict/corrected-agree": 133,
				"verdict/differ-no-flags": 6, "verdict/flag-resolved": 10,
				"verdict/no-error": 145, "verdict/one-word-failed": 173,
				"wrong_output": 7,
			},
			digest: "514887c9563b017358e3c6287b4394ba67310f9e520ac185f6d03d02d1cc4273",
		},
	}
}

func TestBatchGoldenOutputs(t *testing.T) {
	for _, tc := range batchGoldenCases() {
		scn, err := tc.cfg.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		cres, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(cres)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		got := hex.EncodeToString(sum[:])
		if got != tc.digest || !reflect.DeepEqual(cres.Counters, tc.counters) {
			t.Errorf("%s: golden mismatch\ndigest   %q\ncounters %#v", tc.name, got, cres.Counters)
		}
	}
}
