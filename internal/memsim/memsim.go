// Package memsim is a Monte Carlo fault-injection simulator for the
// paper's memory systems. Where the Markov models of internal/simplex
// and internal/duplex abstract a stored word into fault-class counts,
// memsim stores real Reed-Solomon codewords, flips real bits with
// Poisson SEU arrivals, plants real stuck-at faults, scrubs through
// the real decoder and reads through the real arbiter. It serves two
// purposes:
//
//   - cross-validation: with matched rates, the fraction of trials in
//     which a word's error pattern exceeds its code capability must
//     agree with the chains' Fail probability (the xval bench);
//   - model-gap measurement: the paper's chain declares failure as
//     soon as either duplex word exceeds capability, but the real
//     arbiter often survives that (a mis-correcting word is outvoted
//     by its clean twin via the flag rule), so the chain is a
//     conservative bound that the simulator quantifies.
//
// All rates are per hour; trials are independent and reproducible
// from Config.Seed regardless of worker count.
//
// Campaigns run on the internal/campaign engine: Config.Scenario
// adapts a configuration to the engine's Scenario interface, Run is
// the convenience wrapper for plain full-length campaigns, and
// RunCampaign exposes the engine's checkpointing and early-stopping
// controls while still returning the familiar Result.
package memsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/arbiter"
	"repro/internal/campaign"
	"repro/internal/gf"
	"repro/internal/rs"
	"repro/internal/scrub"
)

// Config parameterizes a simulation campaign.
type Config struct {
	Code   *rs.Code
	Duplex bool // false: simplex (single module)

	LambdaBit    float64 // SEU rate per bit per hour, per module
	LambdaSymbol float64 // permanent fault rate per symbol per hour, per module

	ScrubPeriod      float64 // hours between scrubs; 0 disables scrubbing
	ExponentialScrub bool    // exponential instead of periodic scrub intervals

	// DetectionLatency is the delay between a permanent fault striking
	// and the self-checking hardware locating it; until located the
	// fault acts as a random error (paper Section 2). Zero means
	// immediate location, matching the Markov models.
	DetectionLatency float64

	// CrossRepair lets a duplex scrub rewrite a module whose own word
	// failed to decode with its twin's corrected codeword. The paper's
	// model has no such repair — a word beyond capability is lost for
	// good (the chain's Fail state is absorbing) — so the default is
	// off; enabling it quantifies how much a smarter scrub controller
	// would buy (an ablation bench at the repository root).
	CrossRepair bool

	// TiltFactor biases the fault arrival process for importance
	// sampling: all fault rates (SEU and permanent, across modules)
	// are jointly multiplied by the factor, and every trial carries
	// the exact exponential-tilt likelihood ratio
	//
	//	L = θ^-k · exp((θ-1)·R0·H)
	//
	// (k = realized fault arrivals, R0 = untilted total rate, H =
	// horizon) into the campaign engine's weighted counters, so the
	// weighted estimator stays unbiased while rare failures become
	// common in the biased measure. Scrub scheduling and fault-type
	// selection are untouched — only the arrival clock is tilted.
	// 0 or 1 disables tilting (and the trial stream is bit-identical
	// to an untilted run); values > 1 enable it.
	TiltFactor float64

	Horizon float64 // storage time in hours; the word is read once at the end
	Trials  int
	Seed    int64
	Workers int // 0 = GOMAXPROCS
}

// weighted reports whether trials carry importance-sampling weights.
func (c Config) weighted() bool { return c.TiltFactor > 1 }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Code == nil:
		return fmt.Errorf("memsim: nil code")
	case c.LambdaBit < 0 || c.LambdaSymbol < 0:
		return fmt.Errorf("memsim: negative fault rate")
	case c.ScrubPeriod < 0:
		return fmt.Errorf("memsim: negative scrub period")
	case c.DetectionLatency < 0:
		return fmt.Errorf("memsim: negative detection latency")
	case math.IsNaN(c.TiltFactor) || math.IsInf(c.TiltFactor, 0) || c.TiltFactor < 0:
		return fmt.Errorf("memsim: invalid tilt factor %v", c.TiltFactor)
	case c.TiltFactor != 0 && c.TiltFactor < 1:
		return fmt.Errorf("memsim: tilt factor %v must be >= 1 (or 0/1 to disable)", c.TiltFactor)
	case c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0):
		return fmt.Errorf("memsim: invalid horizon %v", c.Horizon)
	case c.Trials <= 0:
		return fmt.Errorf("memsim: need at least one trial")
	}
	return nil
}

// Counter keys under which the scenario reports into the campaign
// engine; ResultFromCampaign maps them back into a Result.
const (
	CounterCorrect             = "correct"
	CounterWrongOutput         = "wrong_output"
	CounterNoOutput            = "no_output"
	CounterCapabilityExceeded  = "capability_exceeded"
	CounterDataBitErrors       = "data_bit_errors"
	CounterSEUs                = "seus"
	CounterPermanentFaults     = "permanent_faults"
	CounterScrubOps            = "scrub_ops"
	CounterScrubMiscorrections = "scrub_miscorrections"

	// VerdictCounterPrefix prefixes one counter per arbiter verdict
	// (duplex campaigns only), e.g. "verdict/no-error".
	VerdictCounterPrefix = "verdict/"
)

// allVerdicts enumerates the arbiter decision paths for counter
// round-tripping; verdictKeys caches the counter names so the duplex
// hot path performs no per-trial string concatenation.
var (
	allVerdicts = []arbiter.Verdict{
		arbiter.NoError, arbiter.CorrectedAgree, arbiter.FlagResolved,
		arbiter.OneWordFailed, arbiter.BothFlaggedDiffer,
		arbiter.DifferNoFlags, arbiter.BothFailed,
	}
	verdictKeys = func() map[arbiter.Verdict]string {
		keys := make(map[arbiter.Verdict]string, len(allVerdicts))
		for _, v := range allVerdicts {
			keys[v] = VerdictCounterPrefix + v.String()
		}
		return keys
	}()
)

// Result aggregates a campaign.
type Result struct {
	Config Config
	Trials int

	// Read outcomes.
	Correct     int // output provided and equal to the stored data
	WrongOutput int // output provided but wrong (undetected failure)
	NoOutput    int // detected failure: no output provided

	// CapabilityExceeded counts trials whose ground-truth error
	// pattern at read time exceeded the code capability of the word
	// (simplex) or of at least one duplex word after erasure
	// recovery — the event the Markov chains call Fail.
	CapabilityExceeded int

	// DataBitErrors is the total number of erroneous data bits over
	// all trials that produced an output.
	DataBitErrors int64

	// Fault and operation counters.
	SEUs            int64
	PermanentFaults int64
	ScrubOps        int64
	// ScrubMiscorrections counts scrub passes that rewrote a module
	// with a valid but wrong codeword (entrenched mis-correction).
	ScrubMiscorrections int64

	// Verdicts tallies arbiter decision paths (duplex only).
	Verdicts map[arbiter.Verdict]int
}

// FailFraction is the observed probability that the read did not
// return correct data (the union of WrongOutput and NoOutput).
func (r *Result) FailFraction() float64 {
	return float64(r.WrongOutput+r.NoOutput) / float64(r.Trials)
}

// CapabilityExceededFraction estimates the Markov chains' Fail-state
// probability.
func (r *Result) CapabilityExceededFraction() float64 {
	return float64(r.CapabilityExceeded) / float64(r.Trials)
}

// PaperBER applies the paper's Eq. (1) prefactor to the observed
// capability-exceeded fraction, making it directly comparable with
// core.Evaluate output.
func (r *Result) PaperBER() float64 {
	code := r.Config.Code
	m := code.Field().M()
	return float64(m) * float64(code.Redundancy()) / float64(code.K()) * r.CapabilityExceededFraction()
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion at the given z (e.g. 1.96 for 95%).
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	return campaign.Wilson(int64(successes), int64(trials), z)
}

// module is one memory module holding a (possibly corrupted) codeword.
// Modules are owned by a worker and recycled across trials via reset.
type module struct {
	stored []gf.Elem
	// stuckMask/stuckVal describe permanently forced bits per symbol.
	stuckMask []uint16
	stuckVal  []uint16
	// locatedAt[s] is the earliest time the self-checking hardware
	// knows symbol s carries a permanent fault; +Inf when healthy.
	locatedAt []float64
}

// init sizes the module's buffers for n-symbol codewords.
func (mo *module) init(n int) {
	mo.stored = make([]gf.Elem, n)
	mo.stuckMask = make([]uint16, n)
	mo.stuckVal = make([]uint16, n)
	mo.locatedAt = make([]float64, n)
}

// reset stores a fresh fault-free codeword for the next trial.
func (mo *module) reset(codeword []gf.Elem) {
	copy(mo.stored, codeword)
	for i := range mo.stuckMask {
		mo.stuckMask[i] = 0
		mo.stuckVal[i] = 0
		mo.locatedAt[i] = math.Inf(1)
	}
}

// applyStuck forces the permanently faulted bits of symbol s.
func (mo *module) applyStuck(s int, v gf.Elem) gf.Elem {
	return v&^gf.Elem(mo.stuckMask[s]) | gf.Elem(mo.stuckVal[s])
}

// flip applies an SEU to bit b of symbol s.
func (mo *module) flip(s, b int) {
	mo.stored[s] = mo.applyStuck(s, mo.stored[s]^gf.Elem(1<<uint(b)))
}

// stick plants a permanent stuck-at fault: bit b of symbol s is forced
// to value v from now on; located at time locate.
func (mo *module) stick(s, b int, v uint16, locate float64) {
	mo.stuckMask[s] |= 1 << uint(b)
	if v != 0 {
		mo.stuckVal[s] |= 1 << uint(b)
	} else {
		mo.stuckVal[s] &^= 1 << uint(b)
	}
	mo.stored[s] = mo.applyStuck(s, mo.stored[s])
	if locate < mo.locatedAt[s] {
		mo.locatedAt[s] = locate
	}
}

// write stores a fresh codeword; stuck bits reassert themselves.
func (mo *module) write(codeword []gf.Elem) {
	for i, v := range codeword {
		mo.stored[i] = mo.applyStuck(i, v)
	}
}

// erasuresInto appends the located permanent-fault positions at time t
// to buf[:0] and returns it, so workers can recycle the backing array.
func (mo *module) erasuresInto(buf []int, t float64) []int {
	buf = buf[:0]
	for s, at := range mo.locatedAt {
		if at <= t {
			buf = append(buf, s)
		}
	}
	return buf
}

// worker owns the per-goroutine scratch of a campaign: the recycled
// modules, the RNG (reseeded per trial for worker-count-independent
// reproducibility), the batch decode workspace and arbiter, and every
// masking/erasure buffer — so the steady state of a campaign performs
// no per-trial heap allocation. Scrub and simplex-read decodes run
// through rs.DecodeAll over the pair arena: the simplex word (or the
// two masked duplex words) decode as a one- or two-word batch, so a
// healthy word costs only the batch syndrome screen while keeping
// per-word outcomes identical to Decoder.Decode.
type worker struct {
	cfg   Config
	rng   *rand.Rand
	sched scrub.Scheduler

	batch *rs.BatchDecoder // scrub/read decode workspace
	arb   *arbiter.Arbiter // duplex read path (owns its own decoders)

	data   []gf.Elem // dataword scratch
	truth  []gf.Elem // ground-truth codeword
	modBuf [2]module
	mods   []*module

	pair       []gf.Elem // scrub-pass arena (up to two words, stride n)
	w1, w2     []gf.Elem // the arena's words (masked duplex words)
	elists     [2][]int  // per-arena-word erasure lists for the stream
	set1, set2 []bool    // per-module erasure bitsets

	// Scrub-pass stream state: the arena decodes through
	// rs.DecodeStream with these closures built once at construction
	// (capturing ws), so the steady state stays allocation-free. A pass
	// stages arenaCount words in the pair arena, fill hands the arena
	// over as the stream's single chunk, and emit captures the chunk
	// result (valid, like before, until the next decode on the same
	// workspace).
	arenaCount int
	arenaDone  bool
	arenaRes   *rs.BatchResult
	arenaFill  func() (rs.Batch, [][]int, error)
	arenaEmit  func(base int, b rs.Batch, res *rs.BatchResult) error
	shared     []int  // both-erased positions
	e1, e2     []int  // erasure position lists
	capSet     []bool // exceedsCapability scratch

	// weighted/lr carry the current trial's importance-sampling state
	// from the event loop to the read classification: lr is the
	// exponential-tilt likelihood ratio of the realized fault arrivals.
	weighted bool
	lr       float64
}

func newWorker(cfg Config) *worker {
	code := cfg.Code
	n, k := code.N(), code.K()
	pair := make([]gf.Elem, 2*n)
	w := &worker{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		batch:  code.NewBatchDecoder(),
		data:   make([]gf.Elem, k),
		truth:  make([]gf.Elem, n),
		pair:   pair,
		w1:     pair[:n:n],
		w2:     pair[n:],
		set1:   make([]bool, n),
		set2:   make([]bool, n),
		shared: make([]int, 0, n),
		e1:     make([]int, 0, n),
		e2:     make([]int, 0, n),
		capSet: make([]bool, n),
	}
	w.arenaFill = func() (rs.Batch, [][]int, error) {
		if w.arenaDone {
			return rs.Batch{}, nil, nil
		}
		w.arenaDone = true
		return rs.Batch{Words: w.pair[:w.arenaCount*n], Stride: n, Count: w.arenaCount},
			w.elists[:w.arenaCount], nil
	}
	w.arenaEmit = func(base int, b rs.Batch, res *rs.BatchResult) error {
		w.arenaRes = res
		return nil
	}
	w.modBuf[0].init(n)
	w.modBuf[1].init(n)
	w.mods = append(w.mods, &w.modBuf[0])
	if cfg.Duplex {
		w.mods = append(w.mods, &w.modBuf[1])
		arb, err := arbiter.New(code)
		if err != nil {
			panic(err) // code is validated
		}
		w.arb = arb
	}
	w.sched = scrub.Never{}
	if cfg.ScrubPeriod > 0 {
		if cfg.ExponentialScrub {
			w.sched = &scrub.Exponential{Period: cfg.ScrubPeriod, Rng: w.rng}
		} else {
			w.sched = scrub.Periodic{Period: cfg.ScrubPeriod}
		}
	}
	return w
}

// scenario adapts a validated Config to the campaign engine.
type scenario struct{ cfg Config }

// Scenario adapts the configuration to the campaign engine's
// Scenario interface (validating it first), for callers that want the
// engine's checkpointing, early stopping or spec-file integration.
func (c Config) Scenario() (campaign.Scenario, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return scenario{cfg: c}, nil
}

// Name encodes the full configuration so checkpoints from a different
// campaign are rejected rather than silently merged.
func (s scenario) Name() string {
	c := s.cfg
	name := fmt.Sprintf("memsim:%v:duplex=%t:lb=%g:ls=%g:scrub=%g:exp=%t:lat=%g:xrep=%t:h=%g:seed=%d",
		c.Code, c.Duplex, c.LambdaBit, c.LambdaSymbol, c.ScrubPeriod,
		c.ExponentialScrub, c.DetectionLatency, c.CrossRepair, c.Horizon, c.Seed)
	if c.weighted() {
		// The suffix keeps tilted and untilted artifacts from merging:
		// their trial streams sample different measures.
		name += fmt.Sprintf(":tilt=%g", c.TiltFactor)
	}
	return name
}

// Trials implements campaign.Scenario.
func (s scenario) Trials() int { return s.cfg.Trials }

// Weighted implements campaign.WeightedScenario: a tilted campaign
// records per-trial likelihood ratios and its artifacts carry weight
// moments.
func (s scenario) Weighted() bool { return s.cfg.weighted() }

// NewWorker implements campaign.Scenario.
func (s scenario) NewWorker() (campaign.Worker, error) { return newWorker(s.cfg), nil }

// Trial implements campaign.Worker.
func (ws *worker) Trial(trial int, acc *campaign.Acc) error {
	ws.runTrial(trial, acc)
	return nil
}

// ResultFromCampaign reassembles the simulator's Result from the
// engine's counter set.
func ResultFromCampaign(cfg Config, cres *campaign.Result) *Result {
	r := &Result{
		Config:              cfg,
		Trials:              cres.Trials,
		Correct:             int(cres.Counter(CounterCorrect)),
		WrongOutput:         int(cres.Counter(CounterWrongOutput)),
		NoOutput:            int(cres.Counter(CounterNoOutput)),
		CapabilityExceeded:  int(cres.Counter(CounterCapabilityExceeded)),
		DataBitErrors:       cres.Counter(CounterDataBitErrors),
		SEUs:                cres.Counter(CounterSEUs),
		PermanentFaults:     cres.Counter(CounterPermanentFaults),
		ScrubOps:            cres.Counter(CounterScrubOps),
		ScrubMiscorrections: cres.Counter(CounterScrubMiscorrections),
		Verdicts:            make(map[arbiter.Verdict]int),
	}
	for _, v := range allVerdicts {
		if c := cres.Counter(VerdictCounterPrefix + v.String()); c != 0 {
			r.Verdicts[v] = int(c)
		}
	}
	return r
}

// Run executes the campaign on the shared engine, distributing trials
// over workers. The result is deterministic for a fixed Config
// (including Seed), independent of Workers.
func Run(cfg Config) (*Result, error) {
	res, _, err := RunCampaign(cfg, campaign.Config{})
	return res, err
}

// RunCampaign executes the campaign with explicit engine controls
// (checkpoint path, early stopping, progress); ecfg.Workers defaults
// to cfg.Workers when zero. It returns both the simulator-level and
// the raw engine result (for early-stop and resume bookkeeping).
func RunCampaign(cfg Config, ecfg campaign.Config) (*Result, *campaign.Result, error) {
	scn, err := cfg.Scenario()
	if err != nil {
		return nil, nil, err
	}
	if ecfg.Workers == 0 {
		ecfg.Workers = cfg.Workers
	}
	cres, err := campaign.Run(scn, ecfg)
	if err != nil {
		return nil, nil, err
	}
	return ResultFromCampaign(cfg, cres), cres, nil
}

// runTrial simulates one stored word (pair) from write to final read.
func (ws *worker) runTrial(trial int, acc *campaign.Acc) {
	cfg := ws.cfg
	// Reseeding the worker RNG per trial keeps trials independent and
	// reproducible regardless of which worker runs them, without
	// rebuilding the generator's state tables on the heap each time.
	ws.rng.Seed(campaign.TrialSeed(cfg.Seed, trial))
	rng := ws.rng
	code := cfg.Code
	n, m := code.N(), code.Field().M()

	for i := range ws.data {
		ws.data[i] = gf.Elem(rng.Intn(code.Field().Size()))
	}
	if err := code.EncodeTo(ws.truth, ws.data); err != nil {
		panic(fmt.Sprintf("memsim: encode: %v", err)) // impossible for valid config
	}
	for _, mo := range ws.mods {
		mo.reset(ws.truth)
	}

	// Per-module stochastic rates. Importance sampling tilts only the
	// arrival clock (all fault rates jointly, so module and fault-type
	// selection keep their untilted distribution); the likelihood
	// ratio of the realized arrival count corrects the estimator.
	seuRate := float64(n*m) * cfg.LambdaBit
	permRate := float64(n) * cfg.LambdaSymbol
	totalRate := float64(len(ws.mods)) * (seuRate + permRate)
	tilt := cfg.TiltFactor
	if tilt == 0 {
		tilt = 1
	}
	arrivals := 0

	t := 0.0
	nextScrub := ws.sched.Next(0)
	for {
		tEvent := math.Inf(1)
		if totalRate > 0 {
			tEvent = t + rng.ExpFloat64()/(totalRate*tilt)
		}
		if nextScrub < tEvent && nextScrub < cfg.Horizon {
			t = nextScrub
			ws.doScrub(t, acc)
			nextScrub = ws.sched.Next(t)
			continue
		}
		if tEvent >= cfg.Horizon {
			break
		}
		t = tEvent
		arrivals++
		// Pick module, then fault type, then location.
		mo := ws.mods[rng.Intn(len(ws.mods))]
		if rng.Float64()*(seuRate+permRate) < seuRate {
			mo.flip(rng.Intn(n), rng.Intn(m))
			acc.Add(CounterSEUs, 1)
		} else {
			mo.stick(rng.Intn(n), rng.Intn(m), uint16(rng.Intn(2)), t+cfg.DetectionLatency)
			acc.Add(CounterPermanentFaults, 1)
		}
	}
	ws.weighted = ws.cfg.weighted()
	ws.lr = 1
	if ws.weighted {
		// Exponential tilt of a Poisson process over [0, H]: the clock
		// redraws at scrub instants telescope, so only the arrival
		// count and the total exposure enter the density ratio.
		ws.lr = math.Exp((tilt-1)*totalRate*cfg.Horizon - float64(arrivals)*math.Log(tilt))
	}
	ws.finalRead(cfg.Horizon, acc)
}

// classify records a per-trial outcome counter: with importance
// sampling active it carries the trial's likelihood ratio into the
// weighted moments, otherwise it is a plain unit count (and the
// artifact bytes stay bit-identical to the pre-weighted engine).
func (ws *worker) classify(acc *campaign.Acc, counter string) {
	if ws.weighted {
		acc.AddWeighted(counter, ws.lr)
	} else {
		acc.Add(counter, 1)
	}
}

// maskPair performs the arbiter's erasure recovery on the two stored
// words into the worker's buffers: positions erased in exactly one
// module are replaced by the twin symbol; positions erased in both are
// returned as shared erasures for the decoders.
func (ws *worker) maskPair(t float64) (w1, w2 []gf.Elem, shared []int) {
	for i := range ws.set1 {
		ws.set1[i] = ws.modBuf[0].locatedAt[i] <= t
		ws.set2[i] = ws.modBuf[1].locatedAt[i] <= t
	}
	w1, w2 = ws.w1, ws.w2
	copy(w1, ws.modBuf[0].stored)
	copy(w2, ws.modBuf[1].stored)
	shared = ws.shared[:0]
	for i := range w1 {
		switch {
		case ws.set1[i] && ws.set2[i]:
			shared = append(shared, i)
		case ws.set1[i]:
			w1[i] = w2[i]
		case ws.set2[i]:
			w2[i] = w1[i]
		}
	}
	return w1, w2, shared
}

// decodeArena streams the first count words of the scrub-pass arena
// through rs.DecodeStream with the erasure lists staged in ws.elists
// (one chunk per pass; fill/emit are the preallocated closures on the
// worker). A failed word stays as received in the arena; a successful
// one is corrected in place.
func (ws *worker) decodeArena(count int) *rs.BatchResult {
	ws.arenaCount = count
	ws.arenaDone = false
	if _, err := ws.batch.DecodeStream(ws.arenaFill, ws.arenaEmit); err != nil {
		panic(fmt.Sprintf("memsim: scrub-arena decode: %v", err)) // arena shape is fixed
	}
	return ws.arenaRes
}

// doScrub reads, corrects and rewrites the stored word(s) through the
// real decoder. A detected-uncorrectable word is left untouched; a
// mis-corrected word is entrenched (and counted).
func (ws *worker) doScrub(t float64, acc *campaign.Acc) {
	acc.Add(CounterScrubOps, 1)
	cfg := ws.cfg
	if !cfg.Duplex {
		mo := ws.mods[0]
		copy(ws.w1, mo.stored)
		ws.elists[0] = mo.erasuresInto(ws.e1, t)
		if ws.decodeArena(1).Words[0].Err != nil {
			return
		}
		mo.write(ws.w1)
		if !equalWords(ws.w1, ws.truth) {
			acc.Add(CounterScrubMiscorrections, 1)
		}
		return
	}
	w1, w2, shared := ws.maskPair(t)
	ws.elists[0], ws.elists[1] = shared, shared
	bres := ws.decodeArena(2)
	err1, err2 := bres.Words[0].Err, bres.Words[1].Err
	rewrite := func(mo *module, codeword []gf.Elem) {
		mo.write(codeword)
		if !equalWords(codeword, ws.truth) {
			acc.Add(CounterScrubMiscorrections, 1)
		}
	}
	switch {
	case err1 == nil && err2 == nil:
		rewrite(ws.mods[0], w1)
		rewrite(ws.mods[1], w2)
	case err1 == nil:
		rewrite(ws.mods[0], w1)
		if cfg.CrossRepair {
			rewrite(ws.mods[1], w1) // resurrect the dead module from the live word
		}
	case err2 == nil:
		rewrite(ws.mods[1], w2)
		if cfg.CrossRepair {
			rewrite(ws.mods[0], w2)
		}
	}
}

// finalRead performs the paper's read-at-stopping-time and classifies
// the outcome.
func (ws *worker) finalRead(t float64, acc *campaign.Acc) {
	cfg := ws.cfg
	code := cfg.Code
	if !cfg.Duplex {
		mo := ws.mods[0]
		erasures := mo.erasuresInto(ws.e1, t)
		if ws.exceedsCapability(mo.stored, erasures) {
			ws.classify(acc, CounterCapabilityExceeded)
		}
		copy(ws.w1, mo.stored)
		ws.elists[0] = erasures
		data := ws.w1[:code.K()] // corrected in place on success
		switch {
		case ws.decodeArena(1).Words[0].Err != nil:
			ws.classify(acc, CounterNoOutput)
		case equalWords(data, ws.truth[:code.K()]):
			ws.classify(acc, CounterCorrect)
		default:
			ws.classify(acc, CounterWrongOutput)
			acc.Add(CounterDataBitErrors, bitErrors(data, ws.truth[:code.K()]))
		}
		return
	}

	w1, w2, shared := ws.maskPair(t)
	if ws.exceedsCapability(w1, shared) || ws.exceedsCapability(w2, shared) {
		ws.classify(acc, CounterCapabilityExceeded)
	}
	e1 := ws.modBuf[0].erasuresInto(ws.e1, t)
	e2 := ws.modBuf[1].erasuresInto(ws.e2, t)
	res, err := ws.arb.Read(ws.modBuf[0].stored, ws.modBuf[1].stored, e1, e2)
	if err != nil {
		panic(fmt.Sprintf("memsim: arbiter: %v", err)) // inputs are structurally valid
	}
	ws.classify(acc, verdictKeys[res.Verdict])
	switch {
	case !res.OK:
		ws.classify(acc, CounterNoOutput)
	case equalWords(res.Data, ws.truth[:code.K()]):
		ws.classify(acc, CounterCorrect)
	default:
		ws.classify(acc, CounterWrongOutput)
		acc.Add(CounterDataBitErrors, bitErrors(res.Data, ws.truth[:code.K()]))
	}
}

// exceedsCapability checks the ground-truth error pattern of one word
// against 2*errors + erasures <= n-k — the condition whose violation
// is the Markov chains' Fail event.
func (ws *worker) exceedsCapability(word []gf.Elem, erasures []int) bool {
	for i := range ws.capSet {
		ws.capSet[i] = false
	}
	for _, p := range erasures {
		ws.capSet[p] = true
	}
	errors := 0
	for i := range word {
		if !ws.capSet[i] && word[i] != ws.truth[i] {
			errors++
		}
	}
	return 2*errors+len(erasures) > ws.cfg.Code.Redundancy()
}

func equalWords(a, b []gf.Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bitErrors(a, b []gf.Elem) int64 {
	var total int64
	for i := range a {
		total += int64(bits.OnesCount16(uint16(a[i] ^ b[i])))
	}
	return total
}
