package mbusim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gf"
	"repro/internal/interleave"
	"repro/internal/rs"
)

func defaultSystems(t *testing.T) []System {
	t.Helper()
	systems, err := DefaultSystems()
	if err != nil {
		t.Fatal(err)
	}
	return systems
}

func TestDefaultSystemsGeometry(t *testing.T) {
	systems := defaultSystems(t)
	if len(systems) != 5 {
		t.Fatalf("got %d systems, want 5", len(systems))
	}
	wantBits := map[string]int{
		"RS(18,16)":               144,
		"RS(20,16)":               160,
		"RS(10,8) x2 interleaved": 160,
		"4x SEC-DED(39,32)":       156,
		"TMR voter":               384,
	}
	for _, s := range systems {
		want, ok := wantBits[s.Name()]
		if !ok {
			t.Errorf("unexpected system %q", s.Name())
			continue
		}
		if s.StoredBits() != want {
			t.Errorf("%s: %d stored bits, want %d", s.Name(), s.StoredBits(), want)
		}
	}
}

func TestSystemsRecoverCleanAndSingleBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range defaultSystems(t) {
		// No events: always recovered.
		for i := 0; i < 20; i++ {
			ok, err := s.Trial(rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s lost data with no faults", s.Name())
			}
		}
		// One single-bit event: always recovered (every system corrects
		// at least one bit flip).
		for i := 0; i < 200; i++ {
			bursts := [][2]int{{rng.Intn(s.StoredBits()), 1}}
			ok, err := s.Trial(rng, bursts)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s lost data on a single bit flip at %d", s.Name(), bursts[0][0])
			}
		}
	}
}

func TestRSWordSurvivesIntraSymbolBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f8 := gf.MustField(8)
	code := rs.MustNew(f8, 18, 16)
	s, err := NewRSWord(code)
	if err != nil {
		t.Fatal(err)
	}
	// An 8-bit burst starting on a symbol boundary corrupts exactly
	// one symbol: always correctable by RS(18,16).
	for i := 0; i < 200; i++ {
		start := 8 * rng.Intn(18)
		ok, err := s.Trial(rng, [][2]int{{start, 8}})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("aligned 8-bit burst defeated RS(18,16)")
		}
	}
}

func TestSECDEDLosesToBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := NewSECDEDBlock()
	if err != nil {
		t.Fatal(err)
	}
	// A 4-bit burst within one word is beyond SEC-DED for most
	// patterns (weight > 2); losses must occur often.
	lost := 0
	for i := 0; i < 300; i++ {
		start := rng.Intn(s.StoredBits() - 4)
		ok, err := s.Trial(rng, [][2]int{{start, 4}})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			lost++
		}
	}
	if lost < 100 {
		t.Errorf("SEC-DED lost only %d/300 4-bit bursts; expected most", lost)
	}
}

func TestTMRSurvivesSingleCopyBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := TMRBlock{}
	// Any single burst is confined to one copy (bursts don't wrap),
	// so the vote always recovers.
	for i := 0; i < 200; i++ {
		start := rng.Intn(s.StoredBits() - 16)
		ok, err := s.Trial(rng, [][2]int{{start, 16}})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("single-copy burst defeated TMR")
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{EventsPerKilobit: 0, BurstBits: 1, Trials: 1},
		{EventsPerKilobit: 1, BurstBits: 0, Trials: 1},
		{EventsPerKilobit: 1, BurstBits: 1, Trials: 0},
		{EventsPerKilobit: math.NaN(), BurstBits: 1, Trials: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	systems := defaultSystems(t)
	if _, err := Run(Config{EventsPerKilobit: 1, BurstBits: 1, Trials: 1}, nil); err == nil {
		t.Error("empty system list accepted")
	}
	if _, err := Run(Config{EventsPerKilobit: -1, BurstBits: 1, Trials: 1}, systems); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestNewRSWordValidation(t *testing.T) {
	f8 := gf.MustField(8)
	if _, err := NewRSWord(nil); err == nil {
		t.Error("nil code accepted")
	}
	wrong := rs.MustNew(f8, 20, 12) // 96 payload bits
	if _, err := NewRSWord(wrong); err == nil {
		t.Error("non-128-bit payload accepted")
	}
}

func TestNewRSInterleavedValidation(t *testing.T) {
	f8 := gf.MustField(8)
	if _, err := NewRSInterleaved(nil); err == nil {
		t.Error("nil page accepted")
	}
	code := rs.MustNew(f8, 18, 16)
	page, err := interleave.New(code, 2) // 256 payload bits
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRSInterleaved(page); err == nil {
		t.Error("non-128-bit page accepted")
	}
}

// TestCampaignBurstOrdering is the headline: a 6-bit burst always
// defeats a SEC-DED word (at least 3 flips land in one 39-bit word no
// matter how it splits), while RS(20,16) absorbs any single burst (at
// most two adjacent symbols, t=2) and only loses to multi-event
// trials. At matched ~1.22-1.25x overhead the symbol organization
// must keep losses well under half of SEC-DED's.
func TestCampaignBurstOrdering(t *testing.T) {
	systems := defaultSystems(t)
	cfg := Config{EventsPerKilobit: 4, BurstBits: 6, Trials: 4000, Seed: 10}
	res, err := Run(cfg, systems)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SystemResult{}
	for _, r := range res {
		byName[r.Name] = r
		if r.Trials != cfg.Trials {
			t.Errorf("%s: trial count %d", r.Name, r.Trials)
		}
		if r.MeanEvents <= 0 {
			t.Errorf("%s: no events injected", r.Name)
		}
	}
	rs20Loss := byName["RS(20,16)"].LossFraction
	rs18Loss := byName["RS(18,16)"].LossFraction
	secdedLoss := byName["4x SEC-DED(39,32)"].LossFraction
	if !(rs20Loss < secdedLoss/2) {
		t.Errorf("6-bit bursts: RS(20,16) loss %v should be well below SEC-DED loss %v", rs20Loss, secdedLoss)
	}
	if !(rs20Loss < rs18Loss) {
		t.Errorf("t=2 should beat t=1 under bursts: %v vs %v", rs20Loss, rs18Loss)
	}
	if tmrLoss := byName["TMR voter"].LossFraction; tmrLoss > rs20Loss {
		t.Errorf("TMR at 3x overhead should not lose more than RS(20,16): %v vs %v", tmrLoss, rs20Loss)
	}
}

// TestDeterminismAcrossWorkerCounts: per-(system, trial) reseeding
// makes the campaign statistics bit-identical for any worker count.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	systems := defaultSystems(t)
	base := Config{EventsPerKilobit: 4, BurstBits: 4, Trials: 1000, Seed: 99}
	var results [][]SystemResult
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg, systems)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("worker count changed results:\n%+v\nvs\n%+v", results[0], results[i])
		}
	}
}

// TestRS2016SurvivesAnySingleSixBitBurst pins the structural claim
// behind the campaign: one 6-bit burst touches at most two adjacent
// symbols, within t=2.
func TestRS2016SurvivesAnySingleSixBitBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f8 := gf.MustField(8)
	s, err := NewRSWord(rs.MustNew(f8, 20, 16))
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start <= s.StoredBits()-6; start++ {
		ok, err := s.Trial(rng, [][2]int{{start, 6}})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("6-bit burst at offset %d defeated RS(20,16)", start)
		}
	}
}

// burstAuditor is a test System that verifies the engine-side burst
// generation contract: every event it receives must apply its full
// configured length inside the image (no edge truncation).
type burstAuditor struct {
	bits      int
	burstBits int

	mu       sync.Mutex
	bursts   int
	minStart int
	maxStart int
}

func (a *burstAuditor) Name() string    { return fmt.Sprintf("auditor(%d)", a.bits) }
func (a *burstAuditor) StoredBits() int { return a.bits }

func (a *burstAuditor) Trial(rng *rand.Rand, bursts [][2]int) (bool, error) {
	for _, b := range bursts {
		if b[1] != a.burstBits {
			return false, fmt.Errorf("burst length %d, want %d", b[1], a.burstBits)
		}
		flips := 0
		flipBits(a.bits, [][2]int{b}, func(int) { flips++ })
		if flips != a.burstBits {
			return false, fmt.Errorf("burst at %d flipped %d of %d bits (truncated at image edge)",
				b[0], flips, a.burstBits)
		}
		a.mu.Lock()
		a.bursts++
		if b[0] < a.minStart {
			a.minStart = b[0]
		}
		if b[0] > a.maxStart {
			a.maxStart = b[0]
		}
		a.mu.Unlock()
	}
	return true, nil
}

// TestEveryBurstFlipsFullLength is the regression test for the
// edge-bias bug: starts used to be drawn over [0, StoredBits), so a
// burst starting in the last BurstBits-1 positions was silently
// truncated by flipBits — with a truncation probability that differed
// per system footprint. Every injected burst must now flip exactly
// BurstBits stored bits, and the clamped start range must still be
// exercised end to end (start 0 and start StoredBits-BurstBits both
// appear).
func TestEveryBurstFlipsFullLength(t *testing.T) {
	const burstBits = 6
	// A deliberately tiny image makes edge starts frequent: 36 bits
	// leaves starts 0..30, so truncation under the old scheme would
	// hit ~14% of events.
	aud := &burstAuditor{bits: 36, burstBits: burstBits, minStart: 1 << 30}
	cfg := Config{EventsPerKilobit: 200, BurstBits: burstBits, Trials: 3000, Seed: 7}
	if _, err := Run(cfg, []System{aud}); err != nil {
		t.Fatal(err)
	}
	if aud.bursts == 0 {
		t.Fatal("no bursts injected")
	}
	wantMax := aud.bits - burstBits
	if aud.minStart != 0 || aud.maxStart != wantMax {
		t.Errorf("observed start range [%d, %d], want [0, %d] fully exercised",
			aud.minStart, aud.maxStart, wantMax)
	}
}

// TestBurstLongerThanImageRejected: a burst that cannot fit a
// system's image has no untruncated placement, so the campaign must
// refuse to run instead of biasing the comparison.
func TestBurstLongerThanImageRejected(t *testing.T) {
	aud := &burstAuditor{bits: 8, burstBits: 16}
	cfg := Config{EventsPerKilobit: 1, BurstBits: 16, Trials: 10, Seed: 1}
	if _, err := Run(cfg, []System{aud}); err == nil {
		t.Error("burst longer than the stored image accepted")
	}
}

// varAuditor verifies the variable-length burst contract: every event
// applies its full sampled length inside the image (no truncation),
// whatever that length is.
type varAuditor struct {
	bits int

	mu      sync.Mutex
	bursts  int
	maxLen  int
	lengths map[int]int
}

func (a *varAuditor) Name() string    { return fmt.Sprintf("varAuditor(%d)", a.bits) }
func (a *varAuditor) StoredBits() int { return a.bits }

func (a *varAuditor) Trial(rng *rand.Rand, bursts [][2]int) (bool, error) {
	for _, b := range bursts {
		if b[1] < 1 || b[1] > a.bits {
			return false, fmt.Errorf("burst length %d outside [1, %d]", b[1], a.bits)
		}
		flips := 0
		flipBits(a.bits, [][2]int{b}, func(int) { flips++ })
		if flips != b[1] {
			return false, fmt.Errorf("burst at %d flipped %d of %d bits (truncated at image edge)",
				b[0], flips, b[1])
		}
		a.mu.Lock()
		a.bursts++
		if a.lengths == nil {
			a.lengths = map[int]int{}
		}
		a.lengths[b[1]]++
		if b[1] > a.maxLen {
			a.maxLen = b[1]
		}
		a.mu.Unlock()
	}
	return true, nil
}

// TestGeometricBurstsFitImage: geometric lengths vary per event, are
// capped at the (deliberately small) image, and always apply fully.
// A mean longer than the image must be accepted (the cap engages)
// where the same fixed length is rejected.
func TestGeometricBurstsFitImage(t *testing.T) {
	aud := &varAuditor{bits: 24}
	cfg := Config{
		EventsPerKilobit: 200,
		BurstDist:        "geometric",
		BurstMeanBits:    48, // twice the image: the cap must engage
		Trials:           2000,
		Seed:             21,
	}
	if _, err := Run(cfg, []System{aud}); err != nil {
		t.Fatal(err)
	}
	if aud.bursts == 0 {
		t.Fatal("no bursts injected")
	}
	if len(aud.lengths) < 2 {
		t.Errorf("geometric lengths did not vary: %v", aud.lengths)
	}
	if aud.maxLen != aud.bits {
		t.Errorf("cap never engaged: max length %d, image %d", aud.maxLen, aud.bits)
	}
}

// TestGeometricCampaignDeterministic: the geometric mode inherits the
// per-(system, trial) reseeding determinism.
func TestGeometricCampaignDeterministic(t *testing.T) {
	systems := defaultSystems(t)
	base := Config{EventsPerKilobit: 4, BurstDist: "geometric", BurstMeanBits: 4, Trials: 800, Seed: 17}
	var results [][]SystemResult
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg, systems)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("worker count changed geometric results:\n%+v\nvs\n%+v", results[0], results[1])
	}
	if results[0][0].MeanEvents <= 0 {
		t.Error("no events injected")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const mean = 2.5
	var sum int
	const n = 100000
	for i := 0; i < n; i++ {
		sum += poisson(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("poisson mean %v, want %v", got, mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) should be 0")
	}
}

func BenchmarkCampaignBurst4(b *testing.B) {
	systems, err := DefaultSystems()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{EventsPerKilobit: 8, BurstBits: 4, Trials: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg, systems); err != nil {
			b.Fatal(err)
		}
	}
}
