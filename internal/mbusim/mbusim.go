// Package mbusim compares protection schemes under multi-bit upsets
// (MBUs): single physical events that flip a run of adjacent stored
// bits. Scaled technologies make MBUs an increasing fraction of SEUs,
// and they are where symbol-organized Reed-Solomon coding earns its
// keep — a burst confined to one 8-bit symbol is still one symbol
// error — while bit-granular SEC-DED sees every flipped bit
// separately. The ext-mbu experiment built on this package completes
// the baseline comparison of ext-baselines, whose chains model only
// independent single-bit SEUs (SEC-DED's best case).
//
// Each System stores the same 128-bit payload in its own layout;
// campaigns inject Poisson-distributed burst events (rate proportional
// to each system's stored size, so denser redundancy honestly costs
// exposure) and measure the unrecovered fraction. Burst lengths come
// from a configurable distribution (internal/burstlen): fixed at
// Config.BurstBits, or geometric with mean Config.BurstMeanBits
// capped at each system's image size. Burst starts are uniform over
// the placements at which the full burst fits the image, so every
// event flips exactly its sampled length — no system gets a discount
// from bursts truncated at its image edge.
//
// Campaigns run on the internal/campaign engine: every trial draws
// its burst pattern from a seed derived from (system, trial), so the
// aggregate statistics are reproducible for a fixed Config.Seed
// regardless of the worker count, and long campaigns inherit the
// engine's checkpointing and early stopping. Fixed-length campaigns
// consume the exact RNG stream of earlier releases (length sampling
// draws no randomness there), so existing fixed-burst numbers do not
// move; geometric campaigns draw one extra uniform per event and are
// a new stream by construction.
package mbusim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/burstlen"
	"repro/internal/campaign"
	"repro/internal/gf"
	"repro/internal/hamming"
	"repro/internal/interleave"
	"repro/internal/rs"
	"repro/internal/tmr"
)

// PayloadBits is the common protected payload size.
const PayloadBits = 128

// System is one protected storage layout under test.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// StoredBits is the physical footprint (drives event exposure).
	StoredBits() int
	// Trial stores a fresh random 128-bit payload, applies the burst
	// events (start bit, length) to the stored image, attempts
	// recovery and reports whether the payload came back exactly.
	// Campaigns shard trials over goroutines, so Trial must be safe
	// for concurrent use on a shared receiver (the stock systems are
	// stateless; per-trial state lives on the stack and in rng).
	Trial(rng *rand.Rand, bursts [][2]int) (recovered bool, err error)
}

// flipBits applies the bursts to a bit-addressable image accessor.
// Burst starts are clamped at generation time so every event fits
// inside the image; the bounds check here is purely defensive against
// hand-built burst lists.
func flipBits(bits int, bursts [][2]int, flip func(bit int)) {
	for _, b := range bursts {
		for i := 0; i < b[1]; i++ {
			if p := b[0] + i; p >= 0 && p < bits {
				flip(p)
			}
		}
	}
}

// --- Reed-Solomon word -------------------------------------------

// RSWord protects the payload as one RS(n,16) codeword of byte
// symbols (k*m = 128 bits).
type RSWord struct {
	code *rs.Code
}

// NewRSWord builds the system for a code with k=16, m=8.
func NewRSWord(code *rs.Code) (*RSWord, error) {
	if code == nil {
		return nil, fmt.Errorf("mbusim: nil code")
	}
	if code.K()*code.Field().M() != PayloadBits {
		return nil, fmt.Errorf("mbusim: code carries %d payload bits, want %d", code.K()*code.Field().M(), PayloadBits)
	}
	return &RSWord{code: code}, nil
}

// Name implements System.
func (s *RSWord) Name() string { return fmt.Sprintf("RS(%d,%d)", s.code.N(), s.code.K()) }

// StoredBits implements System.
func (s *RSWord) StoredBits() int { return s.code.N() * s.code.Field().M() }

// Trial implements System.
func (s *RSWord) Trial(rng *rand.Rand, bursts [][2]int) (bool, error) {
	data := make([]gf.Elem, s.code.K())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(s.code.Field().Size()))
	}
	cw, err := s.code.Encode(data)
	if err != nil {
		return false, err
	}
	m := s.code.Field().M()
	flipBits(s.StoredBits(), bursts, func(bit int) {
		cw[bit/m] ^= 1 << uint(bit%m)
	})
	res, err := s.code.Decode(cw, nil)
	if err != nil {
		return false, nil // detected loss
	}
	for i := range data {
		if res.Data[i] != data[i] {
			return false, nil // mis-correction
		}
	}
	return true, nil
}

// --- Interleaved Reed-Solomon page --------------------------------

// RSInterleaved protects the payload as a depth-d interleaved page of
// RS codewords (the ref [6] organization).
type RSInterleaved struct {
	page *interleave.Page
}

// NewRSInterleaved wraps a page whose payload is 128 bits.
func NewRSInterleaved(page *interleave.Page) (*RSInterleaved, error) {
	if page == nil {
		return nil, fmt.Errorf("mbusim: nil page")
	}
	if page.DataSymbols()*page.Code().Field().M() != PayloadBits {
		return nil, fmt.Errorf("mbusim: page carries %d payload bits, want %d",
			page.DataSymbols()*page.Code().Field().M(), PayloadBits)
	}
	return &RSInterleaved{page: page}, nil
}

// Name implements System.
func (s *RSInterleaved) Name() string {
	return fmt.Sprintf("RS(%d,%d) x%d interleaved", s.page.Code().N(), s.page.Code().K(), s.page.Depth())
}

// StoredBits implements System.
func (s *RSInterleaved) StoredBits() int {
	return s.page.StoredSymbols() * s.page.Code().Field().M()
}

// Trial implements System.
func (s *RSInterleaved) Trial(rng *rand.Rand, bursts [][2]int) (bool, error) {
	data := make([]gf.Elem, s.page.DataSymbols())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(s.page.Code().Field().Size()))
	}
	stored, err := s.page.Encode(data)
	if err != nil {
		return false, err
	}
	m := s.page.Code().Field().M()
	flipBits(s.StoredBits(), bursts, func(bit int) {
		stored[bit/m] ^= 1 << uint(bit%m)
	})
	res, err := s.page.Decode(stored, nil)
	if err != nil {
		return false, err
	}
	if len(res.FailedStripes) > 0 {
		return false, nil
	}
	for i := range data {
		if res.Data[i] != data[i] {
			return false, nil
		}
	}
	return true, nil
}

// --- SEC-DED block -------------------------------------------------

// SECDEDBlock protects the payload as four consecutive SEC-DED(39,32)
// words.
type SECDEDBlock struct {
	code *hamming.Code
}

// NewSECDEDBlock builds the 4x(39,32) layout.
func NewSECDEDBlock() (*SECDEDBlock, error) {
	c, err := hamming.New(32)
	if err != nil {
		return nil, err
	}
	return &SECDEDBlock{code: c}, nil
}

// Name implements System.
func (s *SECDEDBlock) Name() string { return "4x SEC-DED(39,32)" }

// StoredBits implements System.
func (s *SECDEDBlock) StoredBits() int { return 4 * s.code.CodewordBits() }

// Trial implements System.
func (s *SECDEDBlock) Trial(rng *rand.Rand, bursts [][2]int) (bool, error) {
	wordBits := s.code.CodewordBits()
	var payload [4]uint64
	var stored [4]uint64
	for w := range payload {
		payload[w] = rng.Uint64() & (1<<32 - 1)
		cw, err := s.code.Encode(payload[w])
		if err != nil {
			return false, err
		}
		stored[w] = cw
	}
	flipBits(s.StoredBits(), bursts, func(bit int) {
		stored[bit/wordBits] ^= 1 << uint(bit%wordBits)
	})
	for w := range stored {
		res, err := s.code.Decode(stored[w])
		if err != nil {
			return false, err
		}
		if res.Status == hamming.DetectedDouble || res.Data != payload[w] {
			return false, nil
		}
	}
	return true, nil
}

// --- TMR block -------------------------------------------------------

// TMRBlock protects the payload as three consecutive 128-bit copies
// with bit-majority voting.
type TMRBlock struct{}

// Name implements System.
func (TMRBlock) Name() string { return "TMR voter" }

// StoredBits implements System.
func (TMRBlock) StoredBits() int { return 3 * PayloadBits }

// Trial implements System.
func (TMRBlock) Trial(rng *rand.Rand, bursts [][2]int) (bool, error) {
	payload := make([]byte, PayloadBits/8)
	rng.Read(payload)
	a, b, c := tmr.Replicate(payload)
	copies := [3][]byte{a, b, c}
	flipBits(3*PayloadBits, bursts, func(bit int) {
		copyIdx := bit / PayloadBits
		off := bit % PayloadBits
		copies[copyIdx][off/8] ^= 1 << uint(off%8)
	})
	voted, _, err := tmr.Vote(copies[0], copies[1], copies[2])
	if err != nil {
		return false, err
	}
	for i := range payload {
		if voted[i] != payload[i] {
			return false, nil
		}
	}
	return true, nil
}

// --- Campaign --------------------------------------------------------

// Config parameterizes a burst campaign.
type Config struct {
	// EventsPerKilobit is the mean number of burst events per 1000
	// stored bits per trial; each system draws its own Poisson count
	// scaled by its footprint.
	EventsPerKilobit float64
	// BurstBits is the length of each event's bit run under the
	// default fixed distribution.
	BurstBits int
	// BurstDist selects the burst-length distribution: "" or "fixed"
	// (every event is BurstBits long) or "geometric" (lengths drawn
	// with mean BurstMeanBits, capped at each system's image size).
	BurstDist string
	// BurstMeanBits is the geometric mean burst length (>= 1).
	BurstMeanBits float64
	Trials        int
	Seed          int64
	// Workers is the goroutine count for the campaign engine; 0 means
	// GOMAXPROCS.
	Workers int
}

// dist assembles the burst-length distribution the config selects.
func (c Config) dist() burstlen.Dist {
	return burstlen.Dist{Kind: c.BurstDist, Bits: c.BurstBits, MeanBits: c.BurstMeanBits}
}

// LostCounter and EventsCounter name the campaign counters recorded
// per system.
func LostCounter(system string) string   { return "lost/" + system }
func EventsCounter(system string) string { return "events/" + system }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.EventsPerKilobit <= 0 || math.IsNaN(c.EventsPerKilobit):
		return fmt.Errorf("mbusim: invalid event density %v", c.EventsPerKilobit)
	case c.Trials <= 0:
		return fmt.Errorf("mbusim: need at least one trial")
	}
	if err := c.dist().Validate(); err != nil {
		return fmt.Errorf("mbusim: %w", err)
	}
	return nil
}

// SystemResult is one system's campaign outcome.
type SystemResult struct {
	Name         string
	StoredBits   int
	Trials       int
	Lost         int
	MeanEvents   float64
	LossFraction float64
}

// scenario adapts a burst campaign to the engine: one campaign trial
// injects one independent burst pattern into every system.
type scenario struct {
	cfg     Config
	dist    burstlen.Dist
	systems []System
	// lostKeys/eventsKeys cache counter names so the trial loop does
	// no per-trial string concatenation.
	lostKeys, eventsKeys []string
}

// Scenario adapts the configuration and system set to the campaign
// engine's Scenario interface.
func Scenario(cfg Config, systems []System) (campaign.Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(systems) == 0 {
		return nil, fmt.Errorf("mbusim: no systems")
	}
	dist := cfg.dist()
	s := &scenario{cfg: cfg, dist: dist, systems: systems}
	for _, sys := range systems {
		// Every event must apply its full length: a fixed burst longer
		// than the image cannot be placed without truncation, which
		// would bias the cross-system comparison (the truncation
		// probability scales inversely with each system's footprint).
		// Geometric lengths are capped at the image by construction.
		if dist.IsFixed() && cfg.BurstBits > sys.StoredBits() {
			return nil, fmt.Errorf("mbusim: burst of %d bits exceeds %s's %d stored bits",
				cfg.BurstBits, sys.Name(), sys.StoredBits())
		}
		s.lostKeys = append(s.lostKeys, LostCounter(sys.Name()))
		s.eventsKeys = append(s.eventsKeys, EventsCounter(sys.Name()))
	}
	return s, nil
}

// Name encodes the configuration and system set so checkpoints from a
// different campaign are rejected. Fixed-length campaigns keep the
// historical "burst=<bits>" form so their checkpoints stay resumable.
func (s *scenario) Name() string {
	names := make([]string, len(s.systems))
	for i, sys := range s.systems {
		names[i] = sys.Name()
	}
	return fmt.Sprintf("mbusim:epk=%g:burst=%s:seed=%d:%s",
		s.cfg.EventsPerKilobit, s.dist, s.cfg.Seed, strings.Join(names, ","))
}

// Trials implements campaign.Scenario.
func (s *scenario) Trials() int { return s.cfg.Trials }

// NewWorker implements campaign.Scenario.
func (s *scenario) NewWorker() (campaign.Worker, error) {
	return &worker{scn: s, rng: rand.New(rand.NewSource(0))}, nil
}

// worker owns the per-goroutine RNG and the recycled burst buffer.
type worker struct {
	scn    *scenario
	rng    *rand.Rand
	bursts [][2]int
}

// Trial implements campaign.Worker: each (system, trial) pair draws
// from its own deterministic seed, making the campaign independent of
// sharding.
func (w *worker) Trial(trial int, acc *campaign.Acc) error {
	cfg := w.scn.cfg
	for i, sys := range w.scn.systems {
		w.rng.Seed(campaign.TrialSeed(cfg.Seed+int64(i)*7919, trial))
		mean := cfg.EventsPerKilobit * float64(sys.StoredBits()) / 1000
		n := poisson(w.rng, mean)
		w.bursts = w.bursts[:0]
		// Each event samples its length from the configured
		// distribution (capped at the image), then a start uniform
		// over [0, StoredBits-length] so every event flips exactly its
		// full length; drawing starts over the whole image would
		// truncate bursts landing near the edge, under-dosing
		// small-footprint systems.
		for j := 0; j < n; j++ {
			length := w.scn.dist.Sample(w.rng, sys.StoredBits())
			w.bursts = append(w.bursts, [2]int{w.rng.Intn(sys.StoredBits() - length + 1), length})
		}
		acc.Add(w.scn.eventsKeys[i], int64(n))
		ok, err := sys.Trial(w.rng, w.bursts)
		if err != nil {
			return fmt.Errorf("mbusim: %s: %w", sys.Name(), err)
		}
		if !ok {
			acc.Add(w.scn.lostKeys[i], 1)
		}
	}
	return nil
}

// ResultsFromCampaign reassembles per-system results from the
// engine's counters.
func ResultsFromCampaign(systems []System, cres *campaign.Result) []SystemResult {
	out := make([]SystemResult, len(systems))
	for i, sys := range systems {
		lost := cres.Counter(LostCounter(sys.Name()))
		events := cres.Counter(EventsCounter(sys.Name()))
		out[i] = SystemResult{
			Name:         sys.Name(),
			StoredBits:   sys.StoredBits(),
			Trials:       cres.Trials,
			Lost:         int(lost),
			MeanEvents:   float64(events) / float64(cres.Trials),
			LossFraction: float64(lost) / float64(cres.Trials),
		}
	}
	return out
}

// Run executes the campaign over the given systems on the shared
// engine. Statistics are deterministic for a fixed Config.Seed,
// independent of Workers.
func Run(cfg Config, systems []System) ([]SystemResult, error) {
	scn, err := Scenario(cfg, systems)
	if err != nil {
		return nil, err
	}
	cres, err := campaign.Run(scn, campaign.Config{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return ResultsFromCampaign(systems, cres), nil
}

// poisson samples a Poisson variate by Knuth's method (means here are
// small, a few events per trial).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// DefaultSystems returns the standard comparison set:
//
//   - RS(18,16): the paper's code (t=1, 1.125x overhead);
//   - RS(20,16): t=2 at 1.25x overhead — the apples-to-apples rival of
//     the SEC-DED block's 1.22x, and tolerant of any single burst up
//     to 9 bits (at most two adjacent symbols);
//   - RS(10,8) x2 interleaved: the same 1.25x overhead spent on
//     interleaving depth instead of distance;
//   - 4x SEC-DED(39,32) at 1.22x;
//   - TMR at 3x.
func DefaultSystems() ([]System, error) {
	f8, err := gf.NewField(8)
	if err != nil {
		return nil, err
	}
	rsw1816, err := newRSWordFor(f8, 18)
	if err != nil {
		return nil, err
	}
	rsw2016, err := newRSWordFor(f8, 20)
	if err != nil {
		return nil, err
	}
	code108, err := rs.New(f8, 10, 8)
	if err != nil {
		return nil, err
	}
	page, err := interleave.New(code108, 2)
	if err != nil {
		return nil, err
	}
	rsi, err := NewRSInterleaved(page)
	if err != nil {
		return nil, err
	}
	secded, err := NewSECDEDBlock()
	if err != nil {
		return nil, err
	}
	return []System{rsw1816, rsw2016, rsi, secded, TMRBlock{}}, nil
}

func newRSWordFor(f *gf.Field, n int) (*RSWord, error) {
	code, err := rs.New(f, n, 16)
	if err != nil {
		return nil, err
	}
	return NewRSWord(code)
}
